package dnswire

import "errors"

// edns.go implements the EDNS(0) OPT pseudo-record (RFC 6891). EDNS lets a
// client advertise a UDP payload size beyond the classic 512-byte limit —
// the mechanism that made DNSSEC's large responses workable over UDP, and
// whose absence forces the TCP fallback exercised elsewhere in this
// repository. (The DNSSEC→big-responses→DNS-over-TCP chain is exactly how
// the paper explains TCP's dominance among observed attacks, §6.2.)

// TypeOPT is the OPT pseudo-RR type code.
const TypeOPT Type = 41

// DefaultEDNSPayload is the widely deployed default advertisement
// (DNS Flag Day 2020 value).
const DefaultEDNSPayload = 1232

// ClassicMaxPayload is the pre-EDNS UDP payload limit of RFC 1035.
const ClassicMaxPayload = 512

// EDNS carries the OPT pseudo-record fields the platform uses.
type EDNS struct {
	// UDPPayload is the requestor's advertised maximum UDP payload size
	// (stored in the OPT record's CLASS field).
	UDPPayload uint16
	// ExtRCode is the upper 8 bits of the extended response code
	// (stored in the OPT TTL field).
	ExtRCode uint8
	// Version is the EDNS version; only 0 is defined.
	Version uint8
	// DO is the DNSSEC-OK bit.
	DO bool
}

// errNotOPT is returned when interpreting a non-OPT record as EDNS.
var errNotOPT = errors.New("dnswire: record is not an OPT pseudo-RR")

// AttachEDNS appends an OPT pseudo-record to the message's additional
// section, replacing any existing one.
func (m *Message) AttachEDNS(e EDNS) {
	filtered := m.Additional[:0]
	for _, rr := range m.Additional {
		if rr.Type != TypeOPT {
			filtered = append(filtered, rr)
		}
	}
	m.Additional = append(filtered, optRR(e))
}

// optRR packs EDNS fields into the RR wire layout: root owner name, CLASS
// = payload size, TTL = ext-rcode/version/flags.
func optRR(e EDNS) RR {
	var ttl uint32
	ttl |= uint32(e.ExtRCode) << 24
	ttl |= uint32(e.Version) << 16
	if e.DO {
		ttl |= 1 << 15
	}
	return RR{
		Name:  "",
		Type:  TypeOPT,
		Class: Class(e.UDPPayload),
		TTL:   ttl,
	}
}

// ednsOf unpacks an OPT record.
func ednsOf(rr RR) (EDNS, error) {
	if rr.Type != TypeOPT {
		return EDNS{}, errNotOPT
	}
	return EDNS{
		UDPPayload: uint16(rr.Class),
		ExtRCode:   uint8(rr.TTL >> 24),
		Version:    uint8(rr.TTL >> 16),
		DO:         rr.TTL&(1<<15) != 0,
	}, nil
}

// EDNS returns the message's OPT pseudo-record, if present.
func (m *Message) EDNS() (EDNS, bool) {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			e, err := ednsOf(rr)
			if err == nil {
				return e, true
			}
		}
	}
	return EDNS{}, false
}

// MaxUDPPayload returns the effective UDP payload budget a responder should
// honor for this query: the advertised EDNS size (floored at the classic
// limit) or the classic limit without EDNS.
func (m *Message) MaxUDPPayload() int {
	if e, ok := m.EDNS(); ok && int(e.UDPPayload) > ClassicMaxPayload {
		return int(e.UDPPayload)
	}
	return ClassicMaxPayload
}
