package dnswire

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"dnsddos/internal/netx"
)

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"Example.COM.": "example.com",
		"example.com":  "example.com",
		"":             "",
		".":            "",
		"MIL.RU":       "mil.ru",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xbeef, "example.nl", TypeNS)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0xbeef || m.Header.Response {
		t.Errorf("header = %+v", m.Header)
	}
	if len(m.Questions) != 1 {
		t.Fatalf("questions = %d", len(m.Questions))
	}
	if m.Questions[0].Name != "example.nl" || m.Questions[0].Type != TypeNS || m.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", m.Questions[0])
	}
}

func TestResponseWithAllRRTypes(t *testing.T) {
	msg := &Message{
		Header: Header{ID: 7, Response: true, Authoritative: true, RCode: RCodeNoError},
		Questions: []Question{
			{Name: "example.com", Type: TypeNS, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns1.example.net"},
			{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns2.example.net"},
		},
		Authority: []RR{
			{Name: "example.com", Type: TypeSOA, Class: ClassIN, TTL: 600, SOA: &SOAData{
				MName: "ns1.example.net", RName: "hostmaster.example.com",
				Serial: 2022033101, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 300,
			}},
		},
		Additional: []RR{
			{Name: "ns1.example.net", Type: TypeA, Class: ClassIN, TTL: 300, A: netx.MustParseAddr("192.0.2.53")},
			{Name: "info.example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"v=probe", "vantage=nl"}},
		},
	}
	wire, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Response || !m.Header.Authoritative {
		t.Errorf("flags lost: %+v", m.Header)
	}
	if len(m.Answers) != 2 || m.Answers[0].NS != "ns1.example.net" || m.Answers[1].NS != "ns2.example.net" {
		t.Errorf("answers = %+v", m.Answers)
	}
	soa := m.Authority[0].SOA
	if soa == nil || soa.Serial != 2022033101 || soa.MName != "ns1.example.net" {
		t.Errorf("soa = %+v", soa)
	}
	if m.Additional[0].A != netx.MustParseAddr("192.0.2.53") {
		t.Errorf("glue = %v", m.Additional[0].A)
	}
	if len(m.Additional[1].TXT) != 2 || m.Additional[1].TXT[0] != "v=probe" {
		t.Errorf("txt = %v", m.Additional[1].TXT)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	mk := func(names int) int {
		msg := &Message{Header: Header{ID: 1, Response: true}}
		msg.Questions = []Question{{Name: "a-long-zone-name.example.com", Type: TypeNS, Class: ClassIN}}
		for i := 0; i < names; i++ {
			msg.Answers = append(msg.Answers, RR{
				Name: "a-long-zone-name.example.com", Type: TypeNS, Class: ClassIN, TTL: 60,
				NS: "ns.a-long-zone-name.example.com",
			})
		}
		wire, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		return len(wire)
	}
	one, five := mk(1), mk(5)
	// with compression, each extra RR costs far less than a full name
	if five-one >= 4*len("a-long-zone-name.example.com") {
		t.Errorf("compression ineffective: 1 RR = %dB, 5 RRs = %dB", one, five)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 11),
	}
	for _, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("Decode(% x) should fail", in)
		}
	}
	// header claiming one question but no body
	hdr := make([]byte, 12)
	hdr[5] = 1 // QDCount = 1
	if _, err := Decode(hdr); err == nil {
		t.Error("truncated question should fail")
	}
}

func TestDecodeRejectsPointerLoop(t *testing.T) {
	// craft a message whose question name is a self-pointing pointer
	b := make([]byte, 12)
	b[5] = 1 // one question
	// pointer to itself at offset 12
	b = append(b, 0xc0, 12)
	b = append(b, 0, byte(TypeNS), 0, byte(ClassIN))
	if _, err := Decode(b); err == nil {
		t.Error("self-referencing compression pointer should fail")
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	b := make([]byte, 12)
	b[5] = 1
	b = append(b, 0xc0, 40) // points past itself
	b = append(b, 0, byte(TypeNS), 0, byte(ClassIN))
	if _, err := Decode(b); err == nil {
		t.Error("forward compression pointer should fail")
	}
}

func TestEncodeRejectsBadLabels(t *testing.T) {
	long := strings.Repeat("x", 64)
	if _, err := Encode(NewQuery(1, long+".example", TypeA)); err == nil {
		t.Error("64-byte label should fail")
	}
	if _, err := Encode(&Message{
		Questions: []Question{{Name: "a..b", Type: TypeA, Class: ClassIN}},
	}); err == nil {
		t.Error("empty label should fail")
	}
}

func TestEncodeRejectsUnknownRRType(t *testing.T) {
	msg := &Message{Answers: []RR{{Name: "x.example", Type: Type(250), Class: ClassIN}}}
	if _, err := Encode(msg); err == nil {
		t.Error("unknown RR type should fail to encode")
	}
}

func TestEncodeRejectsSOAWithoutData(t *testing.T) {
	msg := &Message{Answers: []RR{{Name: "x.example", Type: TypeSOA, Class: ClassIN}}}
	if _, err := Encode(msg); err == nil {
		t.Error("SOA without SOAData should fail")
	}
}

func TestRCodeTypeStrings(t *testing.T) {
	if RCodeNXDomain.String() != "NXDOMAIN" || RCodeServFail.String() != "SERVFAIL" {
		t.Error("rcode strings")
	}
	if TypeNS.String() != "NS" || Type(999).String() != "TYPE999" {
		t.Error("type strings")
	}
}

// randomName builds a random valid DNS name.
func randomName(rng *rand.Rand) string {
	labels := 1 + rng.IntN(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + rng.IntN(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.IntN(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".")
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xd2))
		msg := &Message{
			Header: Header{
				ID:       uint16(rng.Uint32()),
				Response: rng.IntN(2) == 0,
				RCode:    RCode(rng.IntN(6)),
			},
			Questions: []Question{{Name: randomName(rng), Type: TypeNS, Class: ClassIN}},
		}
		zone := randomName(rng)
		for i := 0; i < rng.IntN(5); i++ {
			switch rng.IntN(3) {
			case 0:
				msg.Answers = append(msg.Answers, RR{Name: zone, Type: TypeNS, Class: ClassIN, TTL: rng.Uint32N(1e6), NS: randomName(rng)})
			case 1:
				msg.Answers = append(msg.Answers, RR{Name: randomName(rng), Type: TypeA, Class: ClassIN, TTL: 1, A: netx.Addr(rng.Uint32())})
			default:
				msg.Answers = append(msg.Answers, RR{Name: zone, Type: TypeTXT, Class: ClassIN, TTL: 2, TXT: []string{randomName(rng)}})
			}
		}
		wire, err := Encode(msg)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		if got.Header.ID != msg.Header.ID || got.Header.RCode != msg.Header.RCode {
			return false
		}
		if len(got.Answers) != len(msg.Answers) {
			return false
		}
		for i, rr := range msg.Answers {
			g := got.Answers[i]
			if g.Type != rr.Type || g.TTL != rr.TTL || CanonicalName(g.Name) != CanonicalName(rr.Name) {
				return false
			}
			switch rr.Type {
			case TypeNS:
				if CanonicalName(g.NS) != CanonicalName(rr.NS) {
					return false
				}
			case TypeA:
				if g.A != rr.A {
					return false
				}
			case TypeTXT:
				if len(g.TXT) != len(rr.TXT) || g.TXT[0] != rr.TXT[0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeFuzzResilience feeds random bytes: the decoder must never panic
// and either error out or return a structurally valid message.
func TestDecodeFuzzResilience(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xf0, 0x0d))
	for i := 0; i < 5000; i++ {
		n := rng.IntN(64)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Uint32())
		}
		m, err := Decode(b)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}
}
