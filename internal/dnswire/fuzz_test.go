package dnswire

import (
	"bytes"
	"testing"

	"dnsddos/internal/netx"
)

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode and decode to an equivalent
// message (for the record types the encoder supports).
func FuzzDecode(f *testing.F) {
	// seed corpus: real encodings
	q := NewQuery(7, "example.nl", TypeNS)
	if wire, err := Encode(q); err == nil {
		f.Add(wire)
	}
	resp := &Message{
		Header:    Header{ID: 9, Response: true, Authoritative: true},
		Questions: []Question{{Name: "a.example", Type: TypeNS, Class: ClassIN}},
		Answers: []RR{
			{Name: "a.example", Type: TypeNS, Class: ClassIN, TTL: 60, NS: "ns1.p.example"},
			{Name: "ns1.p.example", Type: TypeA, Class: ClassIN, TTL: 60, A: netx.MustParseAddr("192.0.2.1")},
		},
	}
	if wire, err := Encode(resp); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xc0}, 64)) // pointer storms

	// EDNS seeds. An OPT pseudo-RR with zero-length RDATA is the common
	// case on the wire (root owner, type 41, class = payload size,
	// RDLENGTH 0) — exactly what AttachEDNS emits:
	eq := NewQuery(3, "edns.example", TypeNS)
	eq.AttachEDNS(EDNS{UDPPayload: 4096, DO: true}) // >512 advertisement
	ewire, err := Encode(eq)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ewire)
	// duplicate OPT: RFC 6891 allows at most one, but attackers send what
	// they like — append a second handcrafted zero-RDATA OPT (root name,
	// type 41, class 512, TTL 0, RDLEN 0) and bump ARCOUNT.
	opt := []byte{0, 0, 41, 2, 0, 0, 0, 0, 0, 0, 0}
	dup := append(append([]byte{}, ewire...), opt...)
	dup[11]++ // ARCOUNT (big-endian at header bytes 10–11; count stays < 255)
	f.Add(dup)
	// truncated OPT: the same record cut mid-fixed-fields
	f.Add(append(append([]byte{}, ewire...), opt[:5]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// structural sanity of accepted messages
		if len(m.Questions) != int(m.Header.QDCount) {
			t.Fatalf("question count mismatch: %d vs %d", len(m.Questions), m.Header.QDCount)
		}
		// names must be canonical-izable without growth beyond limits
		for _, qq := range m.Questions {
			if len(CanonicalName(qq.Name)) > 255 {
				t.Fatalf("oversized name survived decode: %d bytes", len(qq.Name))
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip fuzzes structured inputs: any message the
// encoder accepts must round-trip.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(1), "example.com", uint16(TypeNS))
	f.Add(uint16(0xffff), "a.b.c.d.e", uint16(TypeA))
	f.Add(uint16(0), "", uint16(TypeTXT))
	f.Fuzz(func(t *testing.T, id uint16, name string, qtype uint16) {
		msg := NewQuery(id, name, Type(qtype))
		wire, err := Encode(msg)
		if err != nil {
			return // encoder rejected the name; fine
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.Header.ID != id {
			t.Fatalf("ID changed: %d → %d", id, got.Header.ID)
		}
		if len(got.Questions) != 1 || got.Questions[0].Name != CanonicalName(name) {
			t.Fatalf("question changed: %q → %q", CanonicalName(name), got.Questions[0].Name)
		}
	})
}

// FuzzResponseRoundTrip fuzzes the responses the authoritative server's
// reflex paths emit — truncated referrals, SERVFAIL sheds, RRL slips —
// including the EDNS echo: header flags, the rcode, and the OPT record
// must all survive Encode → Decode unchanged.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add(uint16(1), "example.com", uint16(1232), true, uint8(0), false)
	f.Add(uint16(77), "shed.example", uint16(0), false, uint8(2), true) // SERVFAIL shed
	f.Add(uint16(0xffff), "slip.example.nl", uint16(65535), true, uint8(5), true)
	f.Fuzz(func(t *testing.T, id uint16, name string, payload uint16, tc bool, rcode uint8, do bool) {
		rcode &= 0x0f // the header field is four bits wide
		msg := &Message{
			Header: Header{
				ID:            id,
				Response:      true,
				Authoritative: true,
				Truncated:     tc,
				RCode:         RCode(rcode),
			},
			Questions: []Question{{Name: CanonicalName(name), Type: TypeNS, Class: ClassIN}},
		}
		msg.AttachEDNS(EDNS{UDPPayload: payload, DO: do})
		wire, err := Encode(msg)
		if err != nil {
			return // encoder rejected the name; fine
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.Header.ID != id || !got.Header.Response || !got.Header.Authoritative {
			t.Fatalf("header identity changed: %+v", got.Header)
		}
		if got.Header.Truncated != tc {
			t.Fatalf("TC bit changed: %v → %v", tc, got.Header.Truncated)
		}
		if got.Header.RCode != RCode(rcode) {
			t.Fatalf("rcode changed: %d → %d", rcode, got.Header.RCode)
		}
		e, ok := got.EDNS()
		if !ok {
			t.Fatal("EDNS OPT record lost in round trip")
		}
		if e.UDPPayload != payload || e.DO != do {
			t.Fatalf("EDNS changed: payload %d→%d DO %v→%v", payload, e.UDPPayload, do, e.DO)
		}
	})
}
