package dnswire

import (
	"bytes"
	"testing"

	"dnsddos/internal/netx"
)

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode and decode to an equivalent
// message (for the record types the encoder supports).
func FuzzDecode(f *testing.F) {
	// seed corpus: real encodings
	q := NewQuery(7, "example.nl", TypeNS)
	if wire, err := Encode(q); err == nil {
		f.Add(wire)
	}
	resp := &Message{
		Header:    Header{ID: 9, Response: true, Authoritative: true},
		Questions: []Question{{Name: "a.example", Type: TypeNS, Class: ClassIN}},
		Answers: []RR{
			{Name: "a.example", Type: TypeNS, Class: ClassIN, TTL: 60, NS: "ns1.p.example"},
			{Name: "ns1.p.example", Type: TypeA, Class: ClassIN, TTL: 60, A: netx.MustParseAddr("192.0.2.1")},
		},
	}
	if wire, err := Encode(resp); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xc0}, 64)) // pointer storms

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// structural sanity of accepted messages
		if len(m.Questions) != int(m.Header.QDCount) {
			t.Fatalf("question count mismatch: %d vs %d", len(m.Questions), m.Header.QDCount)
		}
		// names must be canonical-izable without growth beyond limits
		for _, qq := range m.Questions {
			if len(CanonicalName(qq.Name)) > 255 {
				t.Fatalf("oversized name survived decode: %d bytes", len(qq.Name))
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip fuzzes structured inputs: any message the
// encoder accepts must round-trip.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(1), "example.com", uint16(TypeNS))
	f.Add(uint16(0xffff), "a.b.c.d.e", uint16(TypeA))
	f.Add(uint16(0), "", uint16(TypeTXT))
	f.Fuzz(func(t *testing.T, id uint16, name string, qtype uint16) {
		msg := NewQuery(id, name, Type(qtype))
		wire, err := Encode(msg)
		if err != nil {
			return // encoder rejected the name; fine
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.Header.ID != id {
			t.Fatalf("ID changed: %d → %d", id, got.Header.ID)
		}
		if len(got.Questions) != 1 || got.Questions[0].Name != CanonicalName(name) {
			t.Fatalf("question changed: %q → %q", CanonicalName(name), got.Questions[0].Name)
		}
	})
}
