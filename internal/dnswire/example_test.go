package dnswire_test

import (
	"fmt"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
)

// Example shows encoding an explicit NS query (the probe OpenINTEL sends,
// §3.2) and decoding an authoritative answer.
func Example() {
	query := dnswire.NewQuery(0x1234, "example.nl", dnswire.TypeNS)
	wire, _ := dnswire.Encode(query)
	fmt.Printf("query: %d bytes on the wire\n", len(wire))

	answer := &dnswire.Message{
		Header: dnswire.Header{ID: 0x1234, Response: true, Authoritative: true},
		Questions: []dnswire.Question{
			{Name: "example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.RR{
			{Name: "example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 300, NS: "ns1.dns.example"},
		},
		Additional: []dnswire.RR{
			{Name: "ns1.dns.example", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300, A: netx.MustParseAddr("192.0.2.1")},
		},
	}
	wire, _ = dnswire.Encode(answer)
	decoded, _ := dnswire.Decode(wire)
	fmt.Printf("answer: %s NS %s (glue %s)\n",
		decoded.Answers[0].Name, decoded.Answers[0].NS, decoded.Additional[0].A)
	// Output:
	// query: 28 bytes on the wire
	// answer: example.nl NS ns1.dns.example (glue 192.0.2.1)
}
