// Package dnswire implements the subset of the DNS wire format (RFC 1035)
// that the measurement platform exercises: message header, question section,
// and A/NS/SOA/TXT resource records, including name compression on encode
// and decode.
//
// The authoritative server (internal/authserver) and the stub resolver
// (internal/resolver, real-socket mode) speak this format over actual UDP
// and TCP sockets, so the reproduction exercises a genuine DNS data path
// rather than an in-memory shortcut.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"dnsddos/internal/netx"
)

// Type is a DNS RR type.
type Type uint16

// RR types used by the platform. OpenINTEL's relevant probe here is the
// explicit NS query (§3.2); A records appear in glue and in the census
// probes; SOA backs negative responses.
const (
	TypeA   Type = 1
	TypeNS  Type = 2
	TypeSOA Type = 6
	TypeTXT Type = 16
)

// String renders the mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeOPT:
		return "OPT"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes the platform distinguishes. OpenINTEL's status codes
// (OK, SERVFAIL, TIMEOUT, §3.2) map onto these plus a transport-level
// timeout that never reaches the wire.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String renders the mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Header is the 12-byte DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
	QDCount            uint16
	ANCount            uint16
	NSCount            uint16
	ARCount            uint16
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a resource record. Exactly one of the typed data fields is
// meaningful, selected by Type.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	A   netx.Addr // TypeA
	NS  string    // TypeNS: nameserver host name
	SOA *SOAData  // TypeSOA
	TXT []string  // TypeTXT
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// errors returned by the decoder.
var (
	ErrShortMessage = errors.New("dnswire: short message")
	ErrBadName      = errors.New("dnswire: malformed name")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
)

// maxNameLen caps encoded name length per RFC 1035 §2.3.4.
const maxNameLen = 255

// CanonicalName lowercases and strips the trailing dot so names compare
// consistently as map keys throughout the platform.
func CanonicalName(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name
}

type encoder struct {
	buf []byte
	// offsets of previously encoded names for compression; key is the
	// canonical remaining-name suffix
	names map[string]int
}

func (e *encoder) putUint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

func (e *encoder) putUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// putName encodes a domain name with compression.
func (e *encoder) putName(name string) error {
	name = CanonicalName(name)
	if name == "" {
		e.buf = append(e.buf, 0)
		return nil
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if off, ok := e.names[suffix]; ok && off < 0x3fff {
			e.putUint16(0xc000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x3fff {
			e.names[suffix] = len(e.buf)
		}
		label := labels[i]
		if len(label) == 0 || len(label) > 63 {
			return fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) putRR(rr RR) error {
	if err := e.putName(rr.Name); err != nil {
		return err
	}
	e.putUint16(uint16(rr.Type))
	e.putUint16(uint16(rr.Class))
	e.putUint32(rr.TTL)
	// reserve rdlength
	lenAt := len(e.buf)
	e.putUint16(0)
	start := len(e.buf)
	switch rr.Type {
	case TypeA:
		e.putUint32(uint32(rr.A))
	case TypeNS:
		if err := e.putName(rr.NS); err != nil {
			return err
		}
	case TypeSOA:
		if rr.SOA == nil {
			return errors.New("dnswire: SOA record without SOAData")
		}
		if err := e.putName(rr.SOA.MName); err != nil {
			return err
		}
		if err := e.putName(rr.SOA.RName); err != nil {
			return err
		}
		e.putUint32(rr.SOA.Serial)
		e.putUint32(rr.SOA.Refresh)
		e.putUint32(rr.SOA.Retry)
		e.putUint32(rr.SOA.Expire)
		e.putUint32(rr.SOA.Minimum)
	case TypeTXT:
		for _, s := range rr.TXT {
			if len(s) > 255 {
				return errors.New("dnswire: TXT string too long")
			}
			e.buf = append(e.buf, byte(len(s)))
			e.buf = append(e.buf, s...)
		}
	case TypeOPT:
		// EDNS(0) pseudo-record: all meaning lives in the fixed RR
		// fields; we carry no options, so RDATA is empty
	default:
		return fmt.Errorf("dnswire: cannot encode RR type %v", rr.Type)
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xffff {
		return errors.New("dnswire: RDATA too long")
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

// Encode serializes the message, fixing up the section counts from the
// actual slice lengths.
func Encode(m *Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 512), names: make(map[string]int)}
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	e.putUint16(h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xf) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xf)
	e.putUint16(flags)
	e.putUint16(h.QDCount)
	e.putUint16(h.ANCount)
	e.putUint16(h.NSCount)
	e.putUint16(h.ARCount)

	for _, q := range m.Questions {
		if err := e.putName(q.Name); err != nil {
			return nil, err
		}
		e.putUint16(uint16(q.Type))
		e.putUint16(uint16(q.Class))
	}
	for _, rr := range m.Answers {
		if err := e.putRR(rr); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Authority {
		if err := e.putRR(rr); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Additional {
		if err := e.putRR(rr); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// name decodes a possibly compressed name starting at d.off.
func (d *decoder) name() (string, error) {
	s, next, err := d.nameAt(d.off, 0)
	if err != nil {
		return "", err
	}
	d.off = next
	return s, nil
}

// nameAt decodes a name at off; returns the name and the offset just past
// its in-place encoding. depth guards against pointer loops.
func (d *decoder) nameAt(off, depth int) (string, int, error) {
	if depth > 16 {
		return "", 0, ErrBadPointer
	}
	var sb strings.Builder
	for {
		if off >= len(d.buf) {
			return "", 0, ErrShortMessage
		}
		l := int(d.buf[off])
		switch {
		case l == 0:
			return sb.String(), off + 1, nil
		case l&0xc0 == 0xc0:
			if off+2 > len(d.buf) {
				return "", 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(d.buf[off:]) & 0x3fff)
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			rest, _, err := d.nameAt(ptr, depth+1)
			if err != nil {
				return "", 0, err
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.WriteString(rest)
			return sb.String(), off + 2, nil
		case l > 63:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(d.buf) {
				return "", 0, ErrShortMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(d.buf[off+1 : off+1+l])
			if sb.Len() > maxNameLen {
				return "", 0, ErrBadName
			}
			off += 1 + l
		}
	}
}

func (d *decoder) rr() (RR, error) {
	var rr RR
	name, err := d.name()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, err := d.uint16()
	if err != nil {
		return rr, err
	}
	rr.Type = Type(t)
	c, err := d.uint16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(c)
	ttl, err := d.uint32()
	if err != nil {
		return rr, err
	}
	rr.TTL = ttl
	rdlen, err := d.uint16()
	if err != nil {
		return rr, err
	}
	if d.off+int(rdlen) > len(d.buf) {
		return rr, ErrShortMessage
	}
	end := d.off + int(rdlen)
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("dnswire: A RDATA length %d", rdlen)
		}
		v, _ := d.uint32()
		rr.A = netx.Addr(v)
	case TypeNS:
		ns, err := d.name()
		if err != nil {
			return rr, err
		}
		rr.NS = ns
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = d.name(); err != nil {
			return rr, err
		}
		if soa.RName, err = d.name(); err != nil {
			return rr, err
		}
		for _, p := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *p, err = d.uint32(); err != nil {
				return rr, err
			}
		}
		rr.SOA = &soa
	case TypeTXT:
		for d.off < end {
			l := int(d.buf[d.off])
			if d.off+1+l > end {
				return rr, ErrShortMessage
			}
			rr.TXT = append(rr.TXT, string(d.buf[d.off+1:d.off+1+l]))
			d.off += 1 + l
		}
	default:
		// skip unknown RDATA
	}
	if d.off > end {
		return rr, fmt.Errorf("dnswire: RDATA overrun for type %v", rr.Type)
	}
	d.off = end
	return rr, nil
}

// Decode parses a DNS message.
func Decode(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	var m Message
	id, err := d.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		Opcode:             uint8(flags >> 11 & 0xf),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xf),
	}
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}
	m.Header.QDCount, m.Header.ANCount, m.Header.NSCount, m.Header.ARCount = counts[0], counts[1], counts[2], counts[3]
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, err
		}
		t, err := d.uint16()
		if err != nil {
			return nil, err
		}
		q.Type = Type(t)
		c, err := d.uint16()
		if err != nil {
			return nil, err
		}
		q.Class = Class(c)
		m.Questions = append(m.Questions, q)
	}
	for i := 0; i < int(counts[1]); i++ {
		rr, err := d.rr()
		if err != nil {
			return nil, err
		}
		m.Answers = append(m.Answers, rr)
	}
	for i := 0; i < int(counts[2]); i++ {
		rr, err := d.rr()
		if err != nil {
			return nil, err
		}
		m.Authority = append(m.Authority, rr)
	}
	for i := 0; i < int(counts[3]); i++ {
		rr, err := d.rr()
		if err != nil {
			return nil, err
		}
		m.Additional = append(m.Additional, rr)
	}
	return &m, nil
}

// NewQuery builds a standard query message for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: false},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}
