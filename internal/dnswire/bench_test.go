package dnswire

import (
	"testing"

	"dnsddos/internal/netx"
)

func benchMessage() *Message {
	return &Message{
		Header: Header{ID: 7, Response: true, Authoritative: true},
		Questions: []Question{
			{Name: "registered-domain.example.nl", Type: TypeNS, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "registered-domain.example.nl", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns1.provider-dns.net"},
			{Name: "registered-domain.example.nl", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns2.provider-dns.net"},
			{Name: "registered-domain.example.nl", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns3.provider-dns.net"},
		},
		Additional: []RR{
			{Name: "ns1.provider-dns.net", Type: TypeA, Class: ClassIN, TTL: 300, A: netx.MustParseAddr("192.0.2.1")},
			{Name: "ns2.provider-dns.net", Type: TypeA, Class: ClassIN, TTL: 300, A: netx.MustParseAddr("192.0.2.2")},
			{Name: "ns3.provider-dns.net", Type: TypeA, Class: ClassIN, TTL: 300, A: netx.MustParseAddr("192.0.2.3")},
		},
	}
}

func BenchmarkEncodeNSResponse(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeNSResponse(b *testing.B) {
	wire, err := Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
