// compare.go is the regression gate: it holds a fresh harness report
// against the archived baseline and fails on meaningful degradation of
// the two enforced axes — per-mode P99 latency and failure percentage.
// Structural problems (schema drift, a mode that vanished) are errors,
// not regressions: a gate that silently skips what it cannot find
// would pass exactly when it matters most. Improvements always pass;
// noise is absorbed by a relative threshold plus small absolute floors
// so a 2µs P99 on a quiet mode cannot fail the build by doubling.
package e2ebench

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// GateConfig tunes the regression gate.
type GateConfig struct {
	// ThresholdPct is the allowed relative degradation, in percent,
	// of P99 latency and failure rate; zero means DefaultThresholdPct.
	ThresholdPct float64
	// MinP99Delta is the absolute P99 increase below which a relative
	// excursion is noise, not a regression; zero means 250µs.
	MinP99Delta time.Duration
	// MinFailureDeltaPP is the absolute failure-percentage increase
	// (in percentage points) below which a relative excursion passes;
	// zero means 1.0.
	MinFailureDeltaPP float64
}

// DefaultThresholdPct is the default allowed degradation: the X in
// "fail on >X%" per the gating policy (DESIGN §3.8).
const DefaultThresholdPct = 15.0

func (g GateConfig) withDefaults() GateConfig {
	if g.ThresholdPct <= 0 {
		g.ThresholdPct = DefaultThresholdPct
	}
	if g.MinP99Delta <= 0 {
		g.MinP99Delta = 250 * time.Microsecond
	}
	if g.MinFailureDeltaPP <= 0 {
		g.MinFailureDeltaPP = 1.0
	}
	return g
}

// Regression is one gate violation, human-readable and sortable.
type Regression struct {
	Mode   string
	Metric string // "p99" or "failure_pct"
	Detail string
}

func (r Regression) String() string {
	return fmt.Sprintf("mode %s: %s regression: %s", r.Mode, r.Metric, r.Detail)
}

// Compare gates fresh against baseline. It returns the list of
// regressions (empty = gate passes) or an error for structural
// mismatches that make the comparison itself invalid: nil or
// schema-mismatched reports, baselines from the other driver, or a
// baseline mode missing from the fresh run.
func Compare(baseline, fresh *Report, gc GateConfig) ([]Regression, error) {
	if baseline == nil || fresh == nil {
		return nil, errors.New("e2ebench: compare needs both a baseline and a fresh report")
	}
	if baseline.Schema != fresh.Schema {
		return nil, fmt.Errorf("e2ebench: schema version mismatch: baseline v%d vs fresh v%d — re-archive the baseline with -update",
			baseline.Schema, fresh.Schema)
	}
	if baseline.Schema != SchemaVersion {
		return nil, fmt.Errorf("e2ebench: unsupported schema version %d (this build speaks v%d)",
			baseline.Schema, SchemaVersion)
	}
	if baseline.Config.Deterministic != fresh.Config.Deterministic {
		return nil, fmt.Errorf("e2ebench: driver mismatch: baseline deterministic=%v vs fresh deterministic=%v — the numbers are not comparable",
			baseline.Config.Deterministic, fresh.Config.Deterministic)
	}
	gc = gc.withDefaults()

	names := make([]string, 0, len(baseline.Modes))
	for name := range baseline.Modes {
		names = append(names, name)
	}
	sort.Strings(names)

	var regs []Regression
	for _, name := range names {
		base := baseline.Modes[name]
		cur, ok := fresh.Modes[name]
		if !ok {
			return nil, fmt.Errorf("e2ebench: mode %q present in baseline but missing from the fresh run — a gated mode cannot silently disappear", name)
		}
		if cur.Sent == 0 {
			return nil, fmt.Errorf("e2ebench: mode %q issued no queries in the fresh run", name)
		}
		limit := float64(base.P99NS) * (1 + gc.ThresholdPct/100)
		if float64(cur.P99NS) > limit && cur.P99NS-base.P99NS > int64(gc.MinP99Delta) {
			regs = append(regs, Regression{
				Mode: name, Metric: "p99",
				Detail: fmt.Sprintf("%s -> %s (limit %s at +%.0f%%)",
					time.Duration(base.P99NS).Round(time.Microsecond),
					time.Duration(cur.P99NS).Round(time.Microsecond),
					time.Duration(limit).Round(time.Microsecond),
					gc.ThresholdPct),
			})
		}
		failLimit := base.FailurePct * (1 + gc.ThresholdPct/100)
		if cur.FailurePct > failLimit && cur.FailurePct-base.FailurePct > gc.MinFailureDeltaPP {
			regs = append(regs, Regression{
				Mode: name, Metric: "failure_pct",
				Detail: fmt.Sprintf("%.2f%% -> %.2f%% (limit %.2f%% at +%.0f%%, floor %.1fpp)",
					base.FailurePct, cur.FailurePct, failLimit,
					gc.ThresholdPct, gc.MinFailureDeltaPP),
			})
		}
	}
	return regs, nil
}
