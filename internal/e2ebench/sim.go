// sim.go is the deterministic driver behind Config.Deterministic: the
// same orchestration, aggregation, and reporting path as live.go, with
// the socket transport replaced by a seeded in-process model. Queries
// still resolve through the real zone data (authserver.Zone.Answer),
// but each query's cost and fate are pure functions of (seed, mode,
// round, query index), and rounds join on a barrier before their
// metrics snapshot — so the multiset of outcomes, the obs histogram
// buckets built from it, and therefore the whole report body are
// byte-identical across runs regardless of goroutine interleaving.
// This is what the `make test` smoke and the comparator golden tests
// execute: every harness code path except the kernel's sockets, in
// well under a second, with zero tolerance for drift.
package e2ebench

import (
	"context"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/obs"
)

// splitmix64 is the SplitMix64 finalizer — a bijective mixer good
// enough to turn (seed, round, index) into independent draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a draw to [0,1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// simFate is one query's synthetic outcome.
type simFate int

const (
	simOK simFate = iota
	simTimeout
	simServFail
	simTruncatedOK // answered after a TC→TCP fallback
)

// simQuery models one query under a mode: a base RTT drawn log-skewed
// from the seeded stream, then the mode's degradation applied. The
// shapes mirror what the live driver produces — overload modes shed a
// fixed share into their policy's failure class, the chaos window
// taxes a loss share with a lost-try penalty, the blackholed fleet
// pays dead-server probes until the breaker opens — so comparator
// fixtures built from sim runs gate the same fields live runs fill.
func simQuery(spec modeSpec, cfg Config, attack bool, draw uint64) (simFate, time.Duration) {
	u := unit(draw)
	shed := unit(splitmix64(draw ^ 0xa5a5))
	// base: 150µs floor with a skewed body and a thin 5x tail
	rtt := 150*time.Microsecond + time.Duration(u*u*float64(time.Millisecond))
	if unit(splitmix64(draw^0x5a5a)) < 0.01 {
		rtt *= 5
	}
	switch {
	case spec.forceOverload:
		rtt += rtt / 2 // queue wait under saturation
		if shed < 0.20 {
			switch spec.overload {
			case authserver.OverloadServFail:
				return simServFail, rtt
			case authserver.OverloadTruncate:
				return simTruncatedOK, 2 * rtt
			default:
				return simTimeout, 0
			}
		}
	case spec.rrl != nil:
		if shed < 0.15 {
			if shed < 0.075 { // the SLIP half: TC answer, TCP retry
				return simTruncatedOK, 2 * rtt
			}
			return simTimeout, 0 // rate-limited drop
		}
	case spec.attack != nil && attack:
		if shed < spec.attack.Drop {
			if unit(splitmix64(draw^0x3c3c)) < spec.attack.Drop {
				return simTimeout, 0 // retry lost too
			}
			rtt += cfg.PerTryTimeout // one lost try before the retry lands
		}
		rtt += spec.attack.Latency + time.Duration(unit(splitmix64(draw^0xc3c3))*float64(spec.attack.Jitter))
	case spec.blackhole:
		// before the breaker opens, a share of early queries probe the
		// dead server and burn one per-try timeout (handled by index in
		// runModeSim via the breaker-warm counter, not here).
	}
	return simOK, rtt
}

// simBreakerWarm is how many early queries of a blackhole mode pay a
// dead-server probe before the modeled circuit opens — the live
// BreakerThreshold rounded up over the rotation share.
const simBreakerWarm = 9

// runModeSim runs one mode's rounds through the deterministic model.
func runModeSim(ctx context.Context, cfg Config, spec modeSpec, names []string, zone *authserver.Zone) (ModeResult, error) {
	h := fnv.New64a()
	h.Write([]byte(spec.name))
	modeBase := cfg.Seed ^ h.Sum64()

	reg := obs.New()
	m := struct {
		sent, received, timeouts *obs.Counter
		servfails, truncated     *obs.Counter
		breakerSkips             *obs.Counter
		rtt                      *obs.Histogram
	}{
		sent:         reg.Counter("e2ebench.sim.sent"),
		received:     reg.Counter("e2ebench.sim.received"),
		timeouts:     reg.Counter("e2ebench.sim.timeouts"),
		servfails:    reg.Counter("e2ebench.sim.servfails"),
		truncated:    reg.Counter("e2ebench.sim.truncated"),
		breakerSkips: reg.Counter("e2ebench.sim.breaker_skips"),
		rtt:          reg.Histogram("e2ebench.sim.rtt"),
	}

	runRound := func(r int, attack bool, measured bool) roundOutcome {
		roundBase := splitmix64(modeBase ^ uint64(r+1)<<32)
		type workerTally struct {
			out  roundOutcome
			cost time.Duration
		}
		tallies := make([]workerTally, cfg.Concurrency)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				t := &tallies[w]
				// static partition: worker w owns indices w, w+C, ... —
				// every outcome depends only on the index, never on
				// scheduling, so the merged multiset is reproducible.
				for i := w; i < cfg.Queries; i += cfg.Concurrency {
					name := names[i%len(names)]
					resp := zone.Answer(dnswire.Question{
						Name: name, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
					})
					fate, rtt := simQuery(spec, cfg, attack, splitmix64(roundBase^uint64(i)))
					if resp.Header.RCode == dnswire.RCodeNXDomain {
						fate = simServFail // corpus names all exist; belt and braces
					}
					if spec.blackhole {
						if i < simBreakerWarm {
							rtt += cfg.PerTryTimeout // probe the dead server
						} else if i%cfg.Servers == 0 {
							// rotation lands on the open circuit and is
							// skipped for free; only the skip is counted
							m.breakerSkips.Inc()
						}
					}
					t.out.sent++
					m.sent.Inc()
					switch fate {
					case simTimeout:
						t.out.timeouts++
						m.timeouts.Inc()
						t.cost += cfg.PerTryTimeout * 3
					case simServFail:
						t.out.received++
						t.out.servfails++
						m.received.Inc()
						m.servfails.Inc()
						t.out.latencies = append(t.out.latencies, rtt.Seconds())
						m.rtt.Observe(rtt)
						t.cost += rtt
					case simTruncatedOK:
						t.out.received++
						t.out.truncated++
						m.received.Inc()
						m.truncated.Inc()
						t.out.latencies = append(t.out.latencies, rtt.Seconds())
						m.rtt.Observe(rtt)
						t.cost += rtt
					default:
						t.out.received++
						m.received.Inc()
						t.out.latencies = append(t.out.latencies, rtt.Seconds())
						m.rtt.Observe(rtt)
						t.cost += rtt
					}
				}
			}(w)
		}
		wg.Wait()
		var out roundOutcome
		var cost time.Duration
		for i := range tallies {
			t := &tallies[i]
			out.sent += t.out.sent
			out.received += t.out.received
			out.timeouts += t.out.timeouts
			out.servfails += t.out.servfails
			out.errs += t.out.errs
			out.truncated += t.out.truncated
			out.latencies = append(out.latencies, t.out.latencies...)
			cost += t.cost
		}
		sort.Float64s(out.latencies)
		// virtual wall clock: total per-query cost amortized over the
		// worker fan-out — deterministic where a real clock cannot be.
		out.elapsed = cost / time.Duration(cfg.Concurrency)
		if measured {
			out.metrics = reg.Snapshot()
		}
		return out
	}

	roundIdx := 0
	for w := 0; w < cfg.Warmup; w++ {
		if err := ctx.Err(); err != nil {
			return ModeResult{}, err
		}
		runRound(roundIdx, false, false)
		roundIdx++
	}
	rounds := make([]roundOutcome, 0, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return ModeResult{}, err
		}
		rounds = append(rounds, runRound(roundIdx, attackRound(r, cfg.Rounds), true))
		roundIdx++
	}
	return buildModeResult(spec, rounds), nil
}
