// determinism_test.go pins the harness's reproducibility contract:
// two seeded smoke runs must produce byte-identical report bodies
// (environment header excluded) no matter how the round workers
// interleave. It runs under the race detector as its own race-gate
// leg, because the property it protects — outcome multisets that are
// pure functions of the query index — is exactly what a data race in
// the round loop would corrupt.
package e2ebench

import (
	"bytes"
	"context"
	"testing"
)

func TestDeterminismByteIdenticalBodies(t *testing.T) {
	cfg := Smoke()
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		body, err := rep.Body()
		if err != nil {
			t.Fatalf("run %d: encoding body: %v", i, err)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("two seeded smoke runs disagree:\nrun0 %d bytes, run1 %d bytes", len(bodies[0]), len(bodies[1]))
	}
}

// TestDeterminismSeedSensitivity guards the other direction: a
// different seed must actually change the body, or the "seeded" model
// is ignoring its seed and the determinism test proves nothing.
func TestDeterminismSeedSensitivity(t *testing.T) {
	a := Smoke()
	b := Smoke()
	b.Seed = a.Seed + 1
	repA, err := Run(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	// neutralize the echoed seed so only genuine model output differs
	repB.Config.Seed = repA.Config.Seed
	bodyA, _ := repA.Body()
	bodyB, _ := repB.Body()
	if bytes.Equal(bodyA, bodyB) {
		t.Fatal("different seeds produced identical bodies — the model is not consuming the seed")
	}
}
