// live_test.go exercises the real-socket driver end to end on
// loopback: a tiny live sweep must produce a well-formed report with
// the fleet's own metrics embedded, and the blackhole mode must show
// the resilience.Breaker actually protecting the resolver — circuit
// opens and rotation skips visible in the embedded registry snapshot,
// not just a plausible latency number.
package e2ebench

import (
	"context"
	"testing"
	"time"

	"dnsddos/internal/netx"
)

// liveSmokeConfig is a seconds-scale live configuration: small enough
// for `go test`, big enough that every mode issues real traffic.
func liveSmokeConfig(modes ...string) Config {
	return Config{
		Seed:          7,
		Modes:         modes,
		Domains:       80,
		Names:         8,
		Servers:       3,
		Rounds:        1,
		Warmup:        0,
		Queries:       120,
		Concurrency:   8,
		Timeout:       800 * time.Millisecond,
		PerTryTimeout: 40 * time.Millisecond,
	}
}

func TestLiveSmoke(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	cfg := liveSmokeConfig("baseline", "rrl")
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	for _, mode := range cfg.Modes {
		m, ok := rep.Modes[mode]
		if !ok {
			t.Fatalf("mode %s missing from report", mode)
		}
		if m.Sent != int64(cfg.Queries) {
			t.Errorf("%s: sent %d queries, want %d", mode, m.Sent, cfg.Queries)
		}
		if m.Received == 0 {
			t.Errorf("%s: no answers at all", mode)
		}
		if m.Received > 0 && m.P99NS <= 0 {
			t.Errorf("%s: answers without latency quantiles", mode)
		}
		if len(m.Rounds) != cfg.Rounds {
			t.Fatalf("%s: %d rounds recorded, want %d", mode, len(m.Rounds), cfg.Rounds)
		}
		// the embedded snapshot must carry the server side of the story:
		// the fleet's merged authserver counters, not just client views
		snap := m.Rounds[len(m.Rounds)-1].Metrics
		if snap.Counters["authserver.udp_received"] == 0 {
			t.Errorf("%s: embedded metrics missing authserver.udp_received", mode)
		}
		if snap.Counters["dnsload.sent"] == 0 {
			t.Errorf("%s: embedded metrics missing dnsload.sent", mode)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("report does not encode: %v", err)
	}
}

// TestBlackholeBreakerSkips is the resilience.Breaker + LiveResolver
// interaction test the harness exists to make assertable: with one
// fleet server dropping 100% of traffic, the per-server circuit must
// open after the configured failure streak and subsequent rotations
// must skip the dead server — both visible as resolver.live.* counters
// in the round's embedded metrics, while resolution keeps succeeding
// against the surviving servers.
func TestBlackholeBreakerSkips(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	cfg := liveSmokeConfig("blackhole")
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("blackhole run: %v", err)
	}
	m := rep.Modes["blackhole"]
	if m.Received == 0 {
		t.Fatal("no answers: the surviving servers should carry the mode")
	}
	snap := m.Rounds[len(m.Rounds)-1].Metrics
	if opens := snap.Counters["resolver.live.breaker_opens"]; opens < 1 {
		t.Errorf("breaker never opened on the blackholed server (opens=%d)", opens)
	}
	if skips := snap.Counters["resolver.live.breaker_skips"]; skips < 1 {
		t.Errorf("open circuit was never skipped in rotation (skips=%d)", skips)
	}
	// the dead server burned at least one per-try timeout before the
	// circuit opened; the failure shows as try_timeouts, not as end
	// failures, because retries land on live servers
	if snap.Counters["resolver.live.try_timeouts"] == 0 {
		t.Error("no try-level timeouts recorded against the blackholed server")
	}
}

// TestLiveChaosDegrades pins the attack window's direction: the chaos
// mode's failure rate and P99 must sit above a healthy baseline run
// of the same shape — the Eq. 1 ordering the harness reports.
func TestLiveChaosDegrades(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	rep, err := Run(context.Background(), liveSmokeConfig("baseline", "chaos"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	base, chaos := rep.Modes["baseline"], rep.Modes["chaos"]
	if chaos.P99NS <= base.P99NS {
		t.Errorf("chaos p99 %s not above baseline %s",
			time.Duration(chaos.P99NS), time.Duration(base.P99NS))
	}
}
