// Package e2ebench is the end-to-end benchmark harness of the
// reproduction: it boots an in-process authoritative fleet
// (internal/authserver), drives it with internal/dnsload through a
// retrying resolver.LiveResolver, degrades the path with scripted
// internal/faultinject attack windows, and reports P50/P99 latency,
// achieved rate, and failure percentage per *mode* — baseline, RRL,
// each overload policy, a chaos profile, and a blackholed-server fleet
// — in one summary table plus a machine-readable, schema-versioned
// BENCH_e2e.json (report.go). The paper's Eq. 1 impact metric is an
// end-to-end property (resolution success and latency under attack
// windows), and this harness is the paper-shaped number the repo's
// microbenchmarks (BENCH_join.json) do not give: the same scripted
// load compared across defense layers, the way Rizvi et al. compare
// layered root-DNS defenses, with the harness shape (warm-up rounds,
// concurrent measured rounds, per-mode quantile summary) borrowed from
// dnsperfbench.
//
// Two drivers share the orchestration and reporting path. The live
// driver (live.go) speaks through real loopback sockets and measures
// wall-clock truth; its numbers are machine-dependent. The
// deterministic driver (sim.go) replaces the transport with a seeded
// in-process model over the same zone data, so two runs with the same
// seed produce byte-identical report bodies — that is what the smoke
// variant in `make test` and the regression-comparator golden tests
// run, keeping the full harness path (mode setup, round loop, metric
// embedding, report encoding, gating) exercised in under a second.
//
// Regression gating lives in compare.go: `make bench-e2e` compares a
// fresh live run against the archived BENCH_e2e.json and fails on
// >Threshold% degradation of per-mode P99 or failure rate.
package e2ebench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/obs"
	"dnsddos/internal/scenario"
	"dnsddos/internal/stats"
)

// Config describes one harness run. The zero value is not runnable;
// use Default() or Smoke() and override fields.
type Config struct {
	// Seed drives every random choice the harness makes: world
	// generation, resolver rotation and backoff jitter, and — in
	// deterministic mode — the synthetic latency model.
	Seed uint64
	// Modes selects which benchmark modes run, in the given order;
	// empty means every registered mode (ModeNames).
	Modes []string
	// Domains sizes the generated world the fleet serves.
	Domains int
	// Names is how many of those domains the load cycles through.
	Names int
	// Servers is the authoritative fleet size per mode.
	Servers int
	// Rounds is the number of measured rounds per mode; Warmup rounds
	// run first and are discarded from the aggregates.
	Rounds int
	Warmup int
	// Queries is the per-round query count.
	Queries int
	// Concurrency is the dnsload sender fan-out (and the deterministic
	// driver's worker count).
	Concurrency int
	// TargetQPS paces the aggregate send rate; zero means unthrottled.
	TargetQPS float64
	// Timeout bounds one full client resolution (retries included).
	Timeout time.Duration
	// PerTryTimeout bounds one resolver attempt.
	PerTryTimeout time.Duration
	// Deterministic selects the seeded in-process driver (sim.go)
	// instead of real sockets.
	Deterministic bool
}

// Default returns the full live-run configuration behind
// `make bench-e2e`: numbers big enough that percentiles are stable,
// small enough that seven modes finish in tens of seconds.
func Default() Config {
	return Config{
		Seed:          1,
		Domains:       400,
		Names:         32,
		Servers:       3,
		Rounds:        3,
		Warmup:        1,
		Queries:       1500,
		Concurrency:   8,
		Timeout:       2 * time.Second,
		PerTryTimeout: 150 * time.Millisecond,
	}
}

// Smoke returns the sub-second deterministic configuration wired into
// `make test`: tiny corpus, one round, seeded transport model.
func Smoke() Config {
	return Config{
		Seed:          1,
		Domains:       60,
		Names:         8,
		Servers:       2,
		Rounds:        1,
		Warmup:        0,
		Queries:       400,
		Concurrency:   4,
		Timeout:       250 * time.Millisecond,
		PerTryTimeout: 50 * time.Millisecond,
		Deterministic: true,
	}
}

// withDefaults fills unset fields from Default().
func (c Config) withDefaults() Config {
	d := Default()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Domains <= 0 {
		c.Domains = d.Domains
	}
	if c.Names <= 0 {
		c.Names = d.Names
	}
	if c.Names > c.Domains {
		c.Names = c.Domains
	}
	if c.Servers <= 0 {
		c.Servers = d.Servers
	}
	if c.Rounds <= 0 {
		c.Rounds = d.Rounds
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.Concurrency <= 0 {
		c.Concurrency = d.Concurrency
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	if c.PerTryTimeout <= 0 {
		c.PerTryTimeout = d.PerTryTimeout
	}
	return c
}

// modeSpec is one benchmark mode: a server-fleet shape plus the fault
// script applied while the mode's rounds run.
type modeSpec struct {
	name string
	desc string
	// overload configures the policy answered at a full worker queue;
	// forceOverload shrinks the queue (one worker, tiny depth, small
	// per-answer delay) so the policy actually engages under the
	// harness load.
	overload      authserver.OverloadPolicy
	forceOverload bool
	// rrl enables per-/24 response rate limiting.
	rrl *authserver.RRLConfig
	// attack, when non-nil, is the fault profile engaged on every
	// server listener during the mode's attack window (the middle
	// third of the measured rounds — see attackRound).
	attack *faultinject.Profile
	// blackhole drops 100% of traffic on the first fleet server for
	// the whole mode, exercising the resolver's per-server circuit
	// breaker (resilience.Breaker) around a dead authoritative.
	blackhole bool
}

// chaosProfile is the scripted attack-window fault mix of the "chaos"
// mode: the loss plus inflated-latency shape of the paper's attack
// windows (§6.3), sized so the retrying resolver usually still
// resolves — at visibly inflated RTT.
var chaosProfile = faultinject.Profile{
	Drop:    0.30,
	Latency: 2 * time.Millisecond,
	Jitter:  2 * time.Millisecond,
}

// modeRegistry is the ordered mode list. Order here is presentation
// order in the summary table; the JSON report keys modes by name.
var modeRegistry = []modeSpec{
	{name: "baseline", desc: "healthy fleet, no defenses engaged"},
	{name: "rrl", desc: "per-/24 response rate limiting with SLIP",
		rrl: &authserver.RRLConfig{ResponsesPerSecond: 400, Burst: 200, Slip: 2}},
	{name: "overload-drop", desc: "forced queue overflow, sheds silently",
		overload: authserver.OverloadDrop, forceOverload: true},
	{name: "overload-servfail", desc: "forced queue overflow, sheds SERVFAIL",
		overload: authserver.OverloadServFail, forceOverload: true},
	{name: "overload-tc", desc: "forced queue overflow, sheds TC",
		overload: authserver.OverloadTruncate, forceOverload: true},
	{name: "chaos", desc: "scripted attack window: 30% loss, +2ms±2ms",
		attack: &chaosProfile},
	{name: "blackhole", desc: "one fleet server drops everything; breaker skips it",
		blackhole: true},
}

// ModeNames returns every registered mode name, in table order.
func ModeNames() []string {
	names := make([]string, len(modeRegistry))
	for i, m := range modeRegistry {
		names[i] = m.name
	}
	return names
}

// findMode resolves a mode name.
func findMode(name string) (modeSpec, error) {
	for _, m := range modeRegistry {
		if m.name == name {
			return m, nil
		}
	}
	return modeSpec{}, fmt.Errorf("e2ebench: unknown mode %q (have %s)",
		name, strings.Join(ModeNames(), ", "))
}

// attackRound reports whether measured round r (0-based) of total
// falls inside the mode's attack window: the canonical three-phase
// script (healthy / attack / recovered) mapped onto round indices —
// the middle third, covering at least one round. With a single round
// the window spans it.
func attackRound(r, total int) bool {
	if total <= 1 {
		return true
	}
	lo := total / 3
	hi := (2*total + 2) / 3 // ceil(2n/3), exclusive
	if hi <= lo {
		hi = lo + 1
	}
	return r >= lo && r < hi
}

// roundOutcome is one measured round as the drivers hand it to the
// aggregator: raw counts plus the latency samples (seconds, unsorted)
// of every answered query.
type roundOutcome struct {
	sent, received            int64
	timeouts, servfails, errs int64
	truncated                 int64
	latencies                 []float64
	elapsed                   time.Duration
	metrics                   obs.Snapshot
}

// Run executes the configured harness and assembles the report. Modes
// run sequentially — each boots its own fleet, so one mode's backlog
// can never bleed into the next.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	modeNames := cfg.Modes
	if len(modeNames) == 0 {
		modeNames = ModeNames()
	}
	specs := make([]modeSpec, 0, len(modeNames))
	for _, name := range modeNames {
		spec, err := findMode(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}

	world := scenario.GenerateWorld(scenario.WorldConfig{
		Seed:             cfg.Seed,
		Domains:          cfg.Domains,
		GenericProviders: 8,
		AnycastRecall:    0.9,
	})
	zone := authserver.FromDB(world.DB)
	names := make([]string, cfg.Names)
	for i := range names {
		names[i] = world.DB.Domains[i*len(world.DB.Domains)/cfg.Names].Name
	}

	rep := NewReport(cfg)
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			mr  ModeResult
			err error
		)
		if cfg.Deterministic {
			mr, err = runModeSim(ctx, cfg, spec, names, zone)
		} else {
			mr, err = runModeLive(ctx, cfg, spec, names, zone)
		}
		if err != nil {
			return nil, fmt.Errorf("e2ebench: mode %s: %w", spec.name, err)
		}
		rep.Modes[spec.name] = mr
	}
	return rep, nil
}

// buildModeResult folds the measured rounds of one mode into its
// aggregate: quantiles over the union of latency samples, failure
// percentage over everything issued.
func buildModeResult(spec modeSpec, rounds []roundOutcome) ModeResult {
	mr := ModeResult{Desc: spec.desc}
	var all []float64
	var elapsed time.Duration
	for _, r := range rounds {
		mr.Sent += r.sent
		mr.Received += r.received
		mr.Timeouts += r.timeouts
		mr.ServFails += r.servfails
		mr.Errors += r.errs
		mr.Truncated += r.truncated
		elapsed += r.elapsed
		all = append(all, r.latencies...)
		mr.Rounds = append(mr.Rounds, RoundResult{
			Sent:      r.sent,
			Received:  r.received,
			Timeouts:  r.timeouts,
			ServFails: r.servfails,
			Errors:    r.errs,
			P50NS:     quantileNS(r.latencies, 0.50),
			P99NS:     quantileNS(r.latencies, 0.99),
			ElapsedNS: int64(r.elapsed),
			Metrics:   r.metrics,
		})
	}
	sort.Float64s(all)
	mr.P50NS = quantileNS(all, 0.50)
	mr.P90NS = quantileNS(all, 0.90)
	mr.P99NS = quantileNS(all, 0.99)
	mr.MaxNS = quantileNS(all, 1)
	mr.ElapsedNS = int64(elapsed)
	if elapsed > 0 {
		mr.QPS = float64(mr.Received) / elapsed.Seconds()
	}
	if mr.Sent > 0 {
		failed := mr.Sent - mr.Received + mr.ServFails
		mr.FailurePct = 100 * float64(failed) / float64(mr.Sent)
	}
	return mr
}

// quantileNS returns the q-quantile of latency samples (seconds) in
// nanoseconds. stats.Quantile sorts a copy internally, so ordering of
// the input does not matter.
func quantileNS(sorted []float64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return int64(stats.Quantile(sorted, q) * float64(time.Second))
}
