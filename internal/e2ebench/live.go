// live.go is the real-socket driver: per mode it boots a loopback
// authoritative fleet shaped by the modeSpec, interposes a fault
// injector on every listener, and runs warm-up plus measured rounds of
// internal/dnsload traffic through a retrying resolver.LiveResolver
// that rotates over the whole fleet. Everything observable — server
// counters, resolver retry/breaker outcomes, client-side RTTs — lands
// in obs registries whose merged snapshot is embedded per round, so
// the report carries the /metrics.json view of the run next to the
// quantiles derived from it.
package e2ebench

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"net"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnsload"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
)

// timeoutError is the net.Error the fleet client surfaces when a full
// resolution exhausts its tries without any server answering — it
// classifies as a timeout in dnsload's failure accounting, exactly
// like a lost datagram on the raw-socket path.
type timeoutError struct{}

func (timeoutError) Error() string   { return "e2ebench: resolution timed out" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.Error = timeoutError{}

// fleetClient adapts a LiveResolver resolving over the whole fleet to
// the single-address resolver.Client interface dnsload drives. The
// addr dnsload passes is ignored: rotation, retry, and breaker-based
// server skipping happen inside Resolve across every fleet member.
type fleetClient struct {
	lr    *resolver.LiveResolver
	addrs []string
}

func (f *fleetClient) Query(ctx context.Context, _, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	start := time.Now()
	o := f.lr.Resolve(ctx, f.addrs, name, qtype)
	switch o.Status {
	case nsset.StatusOK:
		return o.Msg, o.RTT, nil
	case nsset.StatusServFail:
		// a SERVFAIL outcome is an answer, not loss: hand dnsload a
		// minimal SERVFAIL response with the time the resolution burned,
		// so it lands in RCodes and the latency distribution the way a
		// SERVFAIL datagram from the raw-socket path would.
		return &dnswire.Message{Header: dnswire.Header{
			Response: true, RCode: dnswire.RCodeServFail,
		}}, time.Since(start), nil
	default:
		return nil, 0, timeoutError{}
	}
}

// modeSeed derives a per-mode PCG seed stream from the run seed, so
// adding a mode never perturbs another mode's rotation order.
func modeSeed(seed uint64, mode string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(mode))
	return seed ^ h.Sum64()
}

// runModeLive runs one mode's rounds over real sockets.
func runModeLive(ctx context.Context, cfg Config, spec modeSpec, names []string, zone *authserver.Zone) (ModeResult, error) {
	servers := make([]*authserver.Server, 0, cfg.Servers)
	injectors := make([]*faultinject.Injector, 0, cfg.Servers)
	addrs := make([]string, 0, cfg.Servers)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < cfg.Servers; i++ {
		srv := authserver.NewServer(zone, nil)
		inj := faultinject.New(modeSeed(cfg.Seed, spec.name) + uint64(i))
		srv.WrapUDP = func(pc net.PacketConn) net.PacketConn {
			return faultinject.WrapPacketConn(pc, inj)
		}
		if spec.forceOverload {
			// one worker, a short queue, and a per-answer delay: the
			// worker pool saturates under the harness fan-out and the
			// shed path — the overload policy under test — engages.
			srv.Workers = 1
			srv.Readers = 1
			srv.QueueDepth = 8
			srv.Overload = spec.overload
			srv.SetDelay(300 * time.Microsecond)
		}
		if spec.rrl != nil {
			rrl := *spec.rrl
			srv.RRL = &rrl
		}
		if spec.blackhole && i == 0 {
			inj.SetProfile(faultinject.Profile{Drop: 1.0})
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return ModeResult{}, fmt.Errorf("starting fleet server %d: %w", i, err)
		}
		servers = append(servers, srv)
		injectors = append(injectors, inj)
		addrs = append(addrs, addr)
	}

	reg := obs.New()
	seed := modeSeed(cfg.Seed, spec.name)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout:    cfg.PerTryTimeout,
		MaxTries:         3,
		Backoff:          2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		TCPFallback:      true,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
		Metrics:          reg,
	}, rand.New(rand.NewPCG(seed, seed<<1|1)))
	client := &fleetClient{lr: lr, addrs: addrs}

	runRound := func(attack bool) (*dnsload.Result, error) {
		for i, inj := range injectors {
			if spec.blackhole && i == 0 {
				continue // stays dead for the whole mode
			}
			if attack && spec.attack != nil {
				inj.SetProfile(*spec.attack)
			} else {
				inj.SetProfile(faultinject.Profile{})
			}
		}
		return dnsload.Run(ctx, dnsload.Config{
			Addr:        addrs[0],
			Names:       names,
			Client:      client,
			Concurrency: cfg.Concurrency,
			TargetQPS:   cfg.TargetQPS,
			Queries:     cfg.Queries,
			Timeout:     cfg.Timeout,
			Metrics:     reg,
		})
	}

	for w := 0; w < cfg.Warmup; w++ {
		if _, err := runRound(false); err != nil {
			return ModeResult{}, fmt.Errorf("warmup round %d: %w", w, err)
		}
	}
	rounds := make([]roundOutcome, 0, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		res, err := runRound(attackRound(r, cfg.Rounds))
		if err != nil {
			return ModeResult{}, fmt.Errorf("round %d: %w", r, err)
		}
		// the embedded snapshot is the /metrics.json view at round end:
		// client-side load and resolver metrics merged with every fleet
		// server's registry. Counters are cumulative over the mode
		// (warm-up included), as a live scrape of the endpoints would be.
		combined := obs.New()
		combined.Merge(reg)
		for _, s := range servers {
			combined.Merge(s.Metrics())
		}
		rounds = append(rounds, roundOutcome{
			sent:      res.Sent,
			received:  res.Received,
			timeouts:  res.Timeouts,
			servfails: res.ServFails(),
			errs:      res.DialErrors + res.DecodeErrors + res.Errors,
			truncated: res.Truncated,
			latencies: res.Latencies(),
			elapsed:   res.Elapsed,
			metrics:   combined.Snapshot(),
		})
	}
	return buildModeResult(spec, rounds), nil
}
