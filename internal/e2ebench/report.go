// report.go defines the harness's output contract: the Report struct
// whose JSON form is the archived BENCH_e2e.json. The encoding is
// deterministic-keyed — fixed struct field order, map keys sorted by
// encoding/json, obs snapshots already canonical — so two identical
// runs produce identical bytes. The one run-dependent section, the
// environment header, is carried as a separate top field and stripped
// by Body(), which is what the determinism test and the comparator's
// equality checks look at.
package e2ebench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dnsddos/internal/obs"
)

// SchemaVersion is bumped whenever the report shape changes
// incompatibly; the comparator refuses to gate across versions.
const SchemaVersion = 1

// Env is the run-environment header: everything machine- or
// time-dependent lives here and nowhere else in the report.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Time is the run's start in RFC 3339 UTC.
	Time string `json:"time"`
}

// ConfigSummary echoes the run's effective configuration into the
// report, so an archived baseline documents what produced it.
type ConfigSummary struct {
	Seed          uint64  `json:"seed"`
	Domains       int     `json:"domains"`
	Names         int     `json:"names"`
	Servers       int     `json:"servers"`
	Rounds        int     `json:"rounds"`
	Warmup        int     `json:"warmup"`
	Queries       int     `json:"queries"`
	Concurrency   int     `json:"concurrency"`
	TargetQPS     float64 `json:"target_qps"`
	TimeoutNS     int64   `json:"timeout_ns"`
	PerTryNS      int64   `json:"per_try_timeout_ns"`
	Deterministic bool    `json:"deterministic"`
}

// RoundResult is one measured round: its counts, its own quantiles,
// and the merged obs snapshot at round end (cumulative over the mode,
// the way a live /metrics.json scrape would read).
type RoundResult struct {
	Sent      int64        `json:"sent"`
	Received  int64        `json:"received"`
	Timeouts  int64        `json:"timeouts"`
	ServFails int64        `json:"servfails"`
	Errors    int64        `json:"errors"`
	P50NS     int64        `json:"p50_ns"`
	P99NS     int64        `json:"p99_ns"`
	ElapsedNS int64        `json:"elapsed_ns"`
	Metrics   obs.Snapshot `json:"metrics"`
}

// ModeResult aggregates one mode over its measured rounds. FailurePct
// counts everything the paper counts as a failing resolution: queries
// that never got an answer plus SERVFAIL answers (§6.3.1's two
// classes), as a percentage of queries issued.
type ModeResult struct {
	Desc       string        `json:"desc"`
	Sent       int64         `json:"sent"`
	Received   int64         `json:"received"`
	Timeouts   int64         `json:"timeouts"`
	ServFails  int64         `json:"servfails"`
	Errors     int64         `json:"errors"`
	Truncated  int64         `json:"truncated"`
	FailurePct float64       `json:"failure_pct"`
	QPS        float64       `json:"qps"`
	P50NS      int64         `json:"p50_ns"`
	P90NS      int64         `json:"p90_ns"`
	P99NS      int64         `json:"p99_ns"`
	MaxNS      int64         `json:"max_ns"`
	ElapsedNS  int64         `json:"elapsed_ns"`
	Rounds     []RoundResult `json:"rounds"`
}

// Report is the whole run: schema header, environment, config echo,
// and the per-mode results keyed by mode name.
type Report struct {
	Schema int                   `json:"schema"`
	Env    *Env                  `json:"env,omitempty"`
	Config ConfigSummary         `json:"config"`
	Modes  map[string]ModeResult `json:"modes"`
}

// NewReport builds an empty report for the (already defaulted) config,
// stamped with the current environment.
func NewReport(cfg Config) *Report {
	return &Report{
		Schema: SchemaVersion,
		Env: &Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Time:       time.Now().UTC().Format(time.RFC3339),
		},
		Config: ConfigSummary{
			Seed:          cfg.Seed,
			Domains:       cfg.Domains,
			Names:         cfg.Names,
			Servers:       cfg.Servers,
			Rounds:        cfg.Rounds,
			Warmup:        cfg.Warmup,
			Queries:       cfg.Queries,
			Concurrency:   cfg.Concurrency,
			TargetQPS:     cfg.TargetQPS,
			TimeoutNS:     int64(cfg.Timeout),
			PerTryNS:      int64(cfg.PerTryTimeout),
			Deterministic: cfg.Deterministic,
		},
		Modes: make(map[string]ModeResult),
	}
}

// JSON renders the full report (environment header included) as
// indented JSON, newline-terminated — the BENCH_e2e.json bytes.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Body renders the deterministic body: the report with the
// environment header stripped. Seeded deterministic runs produce
// byte-identical bodies; this is what the determinism gate compares.
func (r *Report) Body() ([]byte, error) {
	shadow := *r
	shadow.Env = nil
	b, err := json.MarshalIndent(&shadow, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile archives the report atomically-enough for a benchmark
// artifact: full write to a temp file, then rename.
func (r *Report) WriteFile(path string) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadReport reads an archived report.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("e2ebench: parsing %s: %w", path, err)
	}
	if r.Modes == nil {
		r.Modes = make(map[string]ModeResult)
	}
	return &r, nil
}

// modeOrder returns the report's mode names in registry order, with
// unknown modes (from a newer schema-compatible run) appended sorted.
func (r *Report) modeOrder() []string {
	var out []string
	seen := make(map[string]bool)
	for _, name := range ModeNames() {
		if _, ok := r.Modes[name]; ok {
			out = append(out, name)
			seen[name] = true
		}
	}
	var extra []string
	for name := range r.Modes {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// SummaryTable renders the dnsperfbench-style human summary: one row
// per mode, quantiles and failure split side by side.
func (r *Report) SummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %7s %9s %9s %9s %9s %9s\n",
		"mode", "sent", "answered", "fail%", "servfail", "timeout", "p50", "p99", "req/s")
	for _, name := range r.modeOrder() {
		m := r.Modes[name]
		fmt.Fprintf(&b, "%-18s %8d %8d %6.2f%% %9d %9d %9s %9s %9.0f\n",
			name, m.Sent, m.Received, m.FailurePct, m.ServFails, m.Timeouts,
			time.Duration(m.P50NS).Round(time.Microsecond),
			time.Duration(m.P99NS).Round(time.Microsecond),
			m.QPS)
	}
	return b.String()
}
