// compare_test.go pins the regression gate: a golden deterministic
// baseline (testdata/golden_smoke.json, regenerated with -update) must
// gate-pass against a fresh seeded run, and the comparator's verdicts
// are pinned by table tests — improvements pass, >threshold P99 or
// failure-rate degradation fails, and structural mismatches (schema
// drift, missing modes, driver mix-ups) error out loudly instead of
// passing vacuously.
package e2ebench

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smokeReport runs the deterministic smoke configuration once.
func smokeReport(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(context.Background(), Smoke())
	if err != nil {
		t.Fatalf("smoke run: %v", err)
	}
	return rep
}

// TestGoldenSmokeBaseline holds the deterministic smoke run against
// the archived golden report: the comparator must pass it, and the
// body bytes must match exactly — any drift in the harness model or
// report encoding shows up here first and is adopted consciously via
// -update, never silently.
func TestGoldenSmokeBaseline(t *testing.T) {
	rep := smokeReport(t)
	body, err := rep.Body()
	if err != nil {
		t.Fatalf("encoding body: %v", err)
	}
	path := filepath.Join("testdata", "golden_smoke.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("smoke report drifted from golden file (rerun with -update if intended); got %d bytes, want %d", len(body), len(want))
	}
	base, err := LoadReport(path)
	if err != nil {
		t.Fatalf("loading golden baseline: %v", err)
	}
	regs, err := Compare(base, rep, GateConfig{})
	if err != nil {
		t.Fatalf("comparing against golden baseline: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("identical run flagged as regression: %v", regs)
	}
}

// gateFixture builds a two-mode report with the given per-mode P99 and
// failure values, shaped like a real run.
func gateFixture(p99 map[string]int64, fail map[string]float64) *Report {
	r := NewReport(Smoke().withDefaults())
	for name, p := range p99 {
		r.Modes[name] = ModeResult{
			Sent: 1000, Received: 950,
			P99NS: p, FailurePct: fail[name],
		}
	}
	return r
}

func TestCompareVerdicts(t *testing.T) {
	ms := func(d time.Duration) int64 { return int64(d) }
	cases := []struct {
		name     string
		base     *Report
		fresh    *Report
		wantRegs int
		wantErr  string
	}{
		{
			name:  "improvement passes",
			base:  gateFixture(map[string]int64{"baseline": ms(10 * time.Millisecond)}, map[string]float64{"baseline": 5}),
			fresh: gateFixture(map[string]int64{"baseline": ms(6 * time.Millisecond)}, map[string]float64{"baseline": 1}),
		},
		{
			name:     "p99 regression beyond threshold fails",
			base:     gateFixture(map[string]int64{"baseline": ms(10 * time.Millisecond)}, nil),
			fresh:    gateFixture(map[string]int64{"baseline": ms(13 * time.Millisecond)}, nil),
			wantRegs: 1,
		},
		{
			name:  "p99 regression inside threshold passes",
			base:  gateFixture(map[string]int64{"baseline": ms(10 * time.Millisecond)}, nil),
			fresh: gateFixture(map[string]int64{"baseline": ms(11 * time.Millisecond)}, nil),
		},
		{
			name:  "relative excursion under the absolute floor passes",
			base:  gateFixture(map[string]int64{"baseline": ms(20 * time.Microsecond)}, nil),
			fresh: gateFixture(map[string]int64{"baseline": ms(60 * time.Microsecond)}, nil),
		},
		{
			name:     "failure-rate regression fails",
			base:     gateFixture(map[string]int64{"chaos": ms(time.Millisecond)}, map[string]float64{"chaos": 2}),
			fresh:    gateFixture(map[string]int64{"chaos": ms(time.Millisecond)}, map[string]float64{"chaos": 4}),
			wantRegs: 1,
		},
		{
			name:  "failure-rate bump under the floor passes",
			base:  gateFixture(map[string]int64{"chaos": ms(time.Millisecond)}, map[string]float64{"chaos": 0.1}),
			fresh: gateFixture(map[string]int64{"chaos": ms(time.Millisecond)}, map[string]float64{"chaos": 0.9}),
		},
		{
			name: "both axes regress in two modes",
			base: gateFixture(
				map[string]int64{"baseline": ms(10 * time.Millisecond), "chaos": ms(50 * time.Millisecond)},
				map[string]float64{"baseline": 0, "chaos": 5}),
			fresh: gateFixture(
				map[string]int64{"baseline": ms(20 * time.Millisecond), "chaos": ms(80 * time.Millisecond)},
				map[string]float64{"baseline": 0, "chaos": 15}),
			wantRegs: 3,
		},
		{
			name:    "missing mode errors",
			base:    gateFixture(map[string]int64{"baseline": 1, "chaos": 1}, nil),
			fresh:   gateFixture(map[string]int64{"baseline": 1}, nil),
			wantErr: "missing from the fresh run",
		},
		{
			name: "schema mismatch errors",
			base: func() *Report {
				r := gateFixture(map[string]int64{"baseline": 1}, nil)
				r.Schema = SchemaVersion + 1
				return r
			}(),
			fresh:   gateFixture(map[string]int64{"baseline": 1}, nil),
			wantErr: "schema version mismatch",
		},
		{
			name: "driver mismatch errors",
			base: func() *Report {
				r := gateFixture(map[string]int64{"baseline": 1}, nil)
				r.Config.Deterministic = false
				return r
			}(),
			fresh:   gateFixture(map[string]int64{"baseline": 1}, nil),
			wantErr: "driver mismatch",
		},
		{
			name: "empty fresh mode errors",
			base: gateFixture(map[string]int64{"baseline": 1}, nil),
			fresh: func() *Report {
				r := gateFixture(map[string]int64{"baseline": 1}, nil)
				m := r.Modes["baseline"]
				m.Sent = 0
				r.Modes["baseline"] = m
				return r
			}(),
			wantErr: "issued no queries",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, err := Compare(tc.base, tc.fresh, GateConfig{})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v (regs %v)", tc.wantErr, err, regs)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(regs) != tc.wantRegs {
				t.Fatalf("want %d regressions, got %d: %v", tc.wantRegs, len(regs), regs)
			}
		})
	}
}

// TestCompareNilReports pins the nil guard.
func TestCompareNilReports(t *testing.T) {
	if _, err := Compare(nil, nil, GateConfig{}); err == nil {
		t.Fatal("comparing nil reports should error")
	}
}

// TestUpdateRewritesDeterministically pins the -update path's
// artifact: archiving the same deterministic run twice produces
// byte-identical files apart from the environment header, and a
// load-rewrite round trip reproduces the bytes exactly.
func TestUpdateRewritesDeterministically(t *testing.T) {
	dir := t.TempDir()
	a, b := smokeReport(t), smokeReport(t)
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	if err := a.WriteFile(pathA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	loadedA, err := LoadReport(pathA)
	if err != nil {
		t.Fatal(err)
	}
	loadedB, err := LoadReport(pathB)
	if err != nil {
		t.Fatal(err)
	}
	bodyA, _ := loadedA.Body()
	bodyB, _ := loadedB.Body()
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("two seeded archives disagree beyond the environment header")
	}
	// rewrite from the loaded form: encode→decode→encode must be stable
	if err := loadedA.WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	rawA, _ := os.ReadFile(pathA)
	rawB, _ := os.ReadFile(pathB)
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("load→rewrite round trip changed the archived bytes")
	}
}
