// Package anycast models the quarterly anycast census (MAnycast², §3.3).
// The paper matches authoritative-NS /24s against /24s the census flags as
// anycast; the census is a lower bound (detection can miss deployments), so
// the snapshot generator exposes a recall knob.
package anycast

import (
	"sort"
	"time"

	"dnsddos/internal/netx"
)

// Snapshot is one quarterly census: the set of /24 prefixes detected as
// anycast, taken at a point in time.
type Snapshot struct {
	Taken    time.Time
	prefixes map[netx.Prefix]struct{}
}

// NewSnapshot builds a snapshot from detected anycast /24s. Prefixes that
// are not /24s are normalized to the /24 of their network address, matching
// the paper's matching granularity.
func NewSnapshot(taken time.Time, slash24s []netx.Prefix) *Snapshot {
	s := &Snapshot{Taken: taken, prefixes: make(map[netx.Prefix]struct{}, len(slash24s))}
	for _, p := range slash24s {
		s.prefixes[p.Addr.Slash24()] = struct{}{}
	}
	return s
}

// IsAnycast reports whether addr's /24 was detected as anycast.
func (s *Snapshot) IsAnycast(addr netx.Addr) bool {
	_, ok := s.prefixes[addr.Slash24()]
	return ok
}

// Len returns the number of anycast /24s in the snapshot.
func (s *Snapshot) Len() int { return len(s.prefixes) }

// Census is the ordered series of quarterly snapshots (January 2021 through
// January 2022 in the paper, §3.3).
type Census struct {
	snapshots []*Snapshot // sorted by Taken
}

// NewCensus builds a census from snapshots (sorted internally).
func NewCensus(snaps ...*Snapshot) *Census {
	c := &Census{snapshots: make([]*Snapshot, len(snaps))}
	copy(c.snapshots, snaps)
	sort.Slice(c.snapshots, func(i, j int) bool { return c.snapshots[i].Taken.Before(c.snapshots[j].Taken) })
	return c
}

// At returns the snapshot in effect at time t: the latest snapshot taken at
// or before t, or the earliest snapshot when t precedes all of them (the
// paper aligns its analysis interval with census availability, §4).
func (c *Census) At(t time.Time) *Snapshot {
	if len(c.snapshots) == 0 {
		return nil
	}
	i := sort.Search(len(c.snapshots), func(i int) bool { return c.snapshots[i].Taken.After(t) })
	if i == 0 {
		return c.snapshots[0]
	}
	return c.snapshots[i-1]
}

// IsAnycastAt reports whether addr's /24 is flagged anycast at time t.
func (c *Census) IsAnycastAt(addr netx.Addr, t time.Time) bool {
	s := c.At(t)
	return s != nil && s.IsAnycast(addr)
}

// Snapshots returns the snapshots in time order (shared slice; read-only).
func (c *Census) Snapshots() []*Snapshot { return c.snapshots }
