package anycast

import (
	"testing"
	"time"

	"dnsddos/internal/netx"
)

func p24(s string) netx.Prefix { return netx.MustParsePrefix(s) }

func TestSnapshotMatching(t *testing.T) {
	s := NewSnapshot(time.Now(), []netx.Prefix{p24("192.0.2.0/24")})
	if !s.IsAnycast(netx.MustParseAddr("192.0.2.77")) {
		t.Error("address in flagged /24 should match")
	}
	if s.IsAnycast(netx.MustParseAddr("192.0.3.1")) {
		t.Error("neighboring /24 should not match")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSnapshotNormalizesTo24(t *testing.T) {
	// a /23 input is normalized to the /24 of its network address,
	// matching the paper's /24 matching granularity
	s := NewSnapshot(time.Now(), []netx.Prefix{netx.MustParsePrefix("10.0.0.0/23")})
	if !s.IsAnycast(netx.MustParseAddr("10.0.0.5")) {
		t.Error("first /24 should match")
	}
	if s.IsAnycast(netx.MustParseAddr("10.0.1.5")) {
		t.Error("second half of /23 is not flagged after normalization")
	}
}

func TestCensusAtSelectsLatestBefore(t *testing.T) {
	q1 := time.Date(2021, 1, 15, 0, 0, 0, 0, time.UTC)
	q2 := time.Date(2021, 4, 15, 0, 0, 0, 0, time.UTC)
	s1 := NewSnapshot(q1, []netx.Prefix{p24("192.0.2.0/24")})
	s2 := NewSnapshot(q2, []netx.Prefix{p24("198.51.100.0/24")})
	c := NewCensus(s2, s1) // out of order on purpose

	if got := c.At(q1.Add(24 * time.Hour)); got != s1 {
		t.Error("between q1 and q2 should use q1")
	}
	if got := c.At(q2); got != s2 {
		t.Error("exactly at q2 should use q2")
	}
	if got := c.At(q2.AddDate(1, 0, 0)); got != s2 {
		t.Error("after the last snapshot should use the last")
	}
	// before the first snapshot: earliest applies (analysis interval is
	// aligned with census availability, §4)
	if got := c.At(q1.AddDate(0, -2, 0)); got != s1 {
		t.Error("before the first snapshot should use the first")
	}
}

func TestIsAnycastAtTransitions(t *testing.T) {
	q1 := time.Date(2021, 1, 15, 0, 0, 0, 0, time.UTC)
	q2 := time.Date(2021, 4, 15, 0, 0, 0, 0, time.UTC)
	addr := netx.MustParseAddr("192.0.2.1")
	c := NewCensus(
		NewSnapshot(q1, nil),
		NewSnapshot(q2, []netx.Prefix{p24("192.0.2.0/24")}),
	)
	if c.IsAnycastAt(addr, q1.Add(time.Hour)) {
		t.Error("not yet detected in q1")
	}
	if !c.IsAnycastAt(addr, q2.Add(time.Hour)) {
		t.Error("detected from q2")
	}
}

func TestEmptyCensus(t *testing.T) {
	c := NewCensus()
	if c.At(time.Now()) != nil {
		t.Error("empty census has no snapshot")
	}
	if c.IsAnycastAt(netx.MustParseAddr("1.1.1.1"), time.Now()) {
		t.Error("empty census flags nothing")
	}
}
