// Package reactive implements the paper's reactive measurement platform
// (§4.3.1): a streaming pipeline that watches the RSDoS feed and, within
// ten minutes of an attack starting, begins probing up to 50 domains
// delegating to the attacked nameservers — every authoritative nameserver
// individually (NS-exhaustive, unlike OpenINTEL's agnostic resolution),
// every 5 minutes, with the 50 probes spread evenly across each window
// (≈ one query per 6 seconds, the §8 ethical rate limit), continuing for
// 24 hours after the attack to capture the post-attack baseline.
//
// The paper built this on Kafka, Spark Structured Streaming and Flume; the
// in-process Bus below stands in for that plumbing with identical
// semantics: decoupled producers and consumers over an ordered stream.
package reactive

import (
	"sync"
)

// Bus is a minimal in-process publish/subscribe stream, the Kafka stand-in.
// Subscribers receive every message published after they subscribe, in
// order, each on its own buffered channel.
type Bus[T any] struct {
	mu     sync.Mutex
	subs   []chan T
	closed bool
}

// NewBus returns an empty bus.
func NewBus[T any]() *Bus[T] { return &Bus[T]{} }

// Subscribe registers a consumer and returns its channel. The channel is
// closed when the bus closes. buffer sizes the subscription queue; a slow
// consumer blocks the publisher once full (backpressure, as with a bounded
// stream).
func (b *Bus[T]) Subscribe(buffer int) <-chan T {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan T, buffer)
	if b.closed {
		close(ch)
		return ch
	}
	b.subs = append(b.subs, ch)
	return ch
}

// Publish delivers msg to all current subscribers.
func (b *Bus[T]) Publish(msg T) {
	b.mu.Lock()
	subs := make([]chan T, len(b.subs))
	copy(subs, b.subs)
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return
	}
	for _, ch := range subs {
		ch <- msg
	}
}

// Close ends the stream; subscriber channels are closed.
func (b *Bus[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}
