package reactive

import (
	"math/rand/v2"
	"sort"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
)

// Config tunes the reactive prober.
type Config struct {
	// MaxDomains caps the domains probed per attack (50 in the paper, an
	// ethical limit on load added to infrastructure under attack, §8).
	MaxDomains int
	// Round is the probing cadence (5 minutes).
	Round time.Duration
	// Tail is how long probing continues after the attack ends (24 h,
	// to capture the post-attack baseline).
	Tail time.Duration
	// MaxTriggerDelay is the worst-case delay between attack start and
	// the first probe (≤ 10 minutes in the paper's deployment).
	MaxTriggerDelay time.Duration
}

// DefaultConfig returns the paper's deployment parameters.
func DefaultConfig() Config {
	return Config{
		MaxDomains:      50,
		Round:           5 * time.Minute,
		Tail:            24 * time.Hour,
		MaxTriggerDelay: 10 * time.Minute,
	}
}

// Probe is one exhaustive-mode measurement: one query to one specific
// nameserver for one domain.
type Probe struct {
	Time   time.Time
	Domain dnsdb.DomainID
	NS     dnsdb.NameserverID
	Status nsset.QueryStatus
	RTT    time.Duration
}

// Campaign is the full probing record for one attack.
type Campaign struct {
	Attack rsdos.Attack
	// Triggered is when probing began (Start + trigger delay).
	Triggered time.Time
	// Domains are the sampled domains (≤ MaxDomains).
	Domains []dnsdb.DomainID
	// Probes are all measurements in time order.
	Probes []Probe
}

// Platform reacts to feed attacks by launching probing campaigns. All
// probing runs in simulation time through the resolver's transport.
type Platform struct {
	cfg Config
	db  *dnsdb.DB
	res *resolver.Resolver
	rng *rand.Rand
}

// NewPlatform builds a platform. rng drives domain sampling and probe
// outcomes.
func NewPlatform(cfg Config, db *dnsdb.DB, res *resolver.Resolver, rng *rand.Rand) *Platform {
	if cfg.MaxDomains <= 0 {
		cfg.MaxDomains = 50
	}
	if cfg.Round <= 0 {
		cfg.Round = 5 * time.Minute
	}
	return &Platform{cfg: cfg, db: db, res: res, rng: rng}
}

// React runs the full campaign for one attack: from trigger (attack start
// plus a delay ≤ MaxTriggerDelay) until attack end plus Tail. The caller
// supplies the attack with its final extent, as when replaying a feed; the
// live Watcher drives incremental reaction instead.
func (p *Platform) React(a rsdos.Attack) *Campaign {
	c := &Campaign{Attack: a}
	// trigger delay: the pipeline publishes 5-minute batches, so the
	// delay is up to one window plus processing, bounded by the config
	delay := time.Duration(p.rng.Int64N(int64(p.cfg.MaxTriggerDelay)))
	c.Triggered = a.Start().Add(delay)
	c.Domains = p.sampleDomains(a)
	if len(c.Domains) == 0 {
		return c
	}
	end := a.End().Add(p.cfg.Tail)
	for roundStart := c.Triggered; roundStart.Before(end); roundStart = roundStart.Add(p.cfg.Round) {
		p.probeRound(c, roundStart)
	}
	return c
}

// sampleDomains joins the attacked IP with the NS→domain mapping and
// samples up to MaxDomains related domains.
func (p *Platform) sampleDomains(a rsdos.Attack) []dnsdb.DomainID {
	ns, ok := p.db.NameserverByAddr(a.Victim)
	if !ok {
		return nil
	}
	all := p.db.DomainsOf(ns.ID)
	if len(all) <= p.cfg.MaxDomains {
		out := make([]dnsdb.DomainID, len(all))
		copy(out, all)
		return out
	}
	// reservoir-free sampling: shuffle a copy of indexes
	idx := p.rng.Perm(len(all))[:p.cfg.MaxDomains]
	sort.Ints(idx)
	out := make([]dnsdb.DomainID, 0, p.cfg.MaxDomains)
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}

// probeRound issues one round of probes: each sampled domain is probed
// against every one of its nameservers, with probe times spread evenly
// across the round (≈ one query per 6 s for 50 domains).
func (p *Platform) probeRound(c *Campaign, start time.Time) {
	n := len(c.Domains)
	step := p.cfg.Round / time.Duration(n)
	for i, d := range c.Domains {
		t := start.Add(time.Duration(i) * step)
		for _, nsID := range p.db.Domains[d].NS {
			o := p.res.QueryNS(p.rng, nsID, t)
			c.Probes = append(c.Probes, Probe{
				Time:   t,
				Domain: d,
				NS:     nsID,
				Status: o.Status,
				RTT:    o.RTT,
			})
		}
	}
}

// WindowAvailability summarizes a campaign per 5-minute window: the
// fraction of probes answered, overall and per nameserver.
type WindowAvailability struct {
	Window clock.Window
	OK     int
	Total  int
	PerNS  map[dnsdb.NameserverID][2]int // [ok, total]
}

// Rate returns the answered fraction.
func (wa WindowAvailability) Rate() float64 {
	if wa.Total == 0 {
		return 0
	}
	return float64(wa.OK) / float64(wa.Total)
}

// Availability folds the campaign's probes into per-window availability.
func (c *Campaign) Availability() []WindowAvailability {
	byWin := make(map[clock.Window]*WindowAvailability)
	for _, pr := range c.Probes {
		w := clock.WindowOf(pr.Time)
		wa := byWin[w]
		if wa == nil {
			wa = &WindowAvailability{Window: w, PerNS: make(map[dnsdb.NameserverID][2]int)}
			byWin[w] = wa
		}
		wa.Total++
		cnt := wa.PerNS[pr.NS]
		cnt[1]++
		if pr.Status == nsset.StatusOK {
			wa.OK++
			cnt[0]++
		}
		wa.PerNS[pr.NS] = cnt
	}
	out := make([]WindowAvailability, 0, len(byWin))
	for _, wa := range byWin {
		out = append(out, *wa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}

// RecoveryTime returns when availability first reached the threshold at or
// after the attack end (the RDZ "intermittently responsive at 06:00 next
// day" analysis, §5.2.2). ok is false if it never recovered within the
// campaign.
func (c *Campaign) RecoveryTime(threshold float64) (time.Time, bool) {
	for _, wa := range c.Availability() {
		if !wa.Window.Start().Before(c.Attack.End()) && wa.Rate() >= threshold {
			return wa.Window.Start(), true
		}
	}
	return time.Time{}, false
}

// UnresolvableDuringAttack reports whether every probe during the attack
// interval failed (the mil.ru outcome, §5.2.1).
func (c *Campaign) UnresolvableDuringAttack() bool {
	any := false
	for _, pr := range c.Probes {
		if pr.Time.Before(c.Attack.End()) && !pr.Time.Before(c.Attack.Start()) {
			any = true
			if pr.Status == nsset.StatusOK {
				return false
			}
		}
	}
	return any
}

// Watcher consumes a live attack stream from a Bus and launches campaigns.
// Campaign results are published to the results bus. It processes attacks
// sequentially in simulation time (probing itself is simulated), so a
// single goroutine suffices; Run returns when the feed closes.
type Watcher struct {
	platform *Platform
	seen     map[string]struct{}
}

// NewWatcher builds a watcher over the platform.
func NewWatcher(platform *Platform) *Watcher {
	return &Watcher{platform: platform, seen: make(map[string]struct{})}
}

// Run consumes attacks until the channel closes, deduplicating repeat feed
// entries for the same (victim, start window), and publishes campaigns.
func (w *Watcher) Run(feed <-chan rsdos.Attack, results *Bus[*Campaign]) {
	for a := range feed {
		key := a.Victim.String() + "|" + a.StartWindow.String()
		if _, dup := w.seen[key]; dup {
			continue
		}
		w.seen[key] = struct{}{}
		results.Publish(w.platform.React(a))
	}
	results.Close()
}
