package reactive

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/simnet"
)

// anycastOutageWorld builds one anycast nameserver under a flood that
// saturates hot sites while cold ones survive.
func anycastOutageWorld(t *testing.T) (*dnsdb.DB, *simnet.Net, rsdos.Attack) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "Regional"})
	id, err := db.AddNameserver(dnsdb.Nameserver{
		Host: "ns1.regional.example", Addr: netx.Addr(0x53000001), Provider: pid,
		Anycast: true, Sites: 16, CapacityPPS: 5e4, BaseRTT: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		db.AddDomain(dnsdb.Domain{Name: "r.example", NS: []dnsdb.NameserverID{id}})
	}
	db.Freeze()
	start := clock.StudyStart.Add(100 * 24 * time.Hour)
	spec := attacksim.Spec{
		Target: db.Nameservers[id].Addr, Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{53},
		Start: start, End: start.Add(time.Hour), PPS: 1.5e6,
	}
	net := simnet.New(simnet.DefaultParams(), db, attacksim.NewSchedule([]attacksim.Spec{spec}))
	attack := rsdos.Attack{
		ID: 1, Victim: spec.Target,
		StartWindow: clock.WindowOf(spec.Start),
		EndWindow:   clock.WindowOf(spec.End) - 1,
	}
	return db, net, attack
}

func TestMultiVantageCampaigns(t *testing.T) {
	db, net, attack := anycastOutageWorld(t)
	cfg := DefaultConfig()
	cfg.Tail = 0
	vp := NewVantagePlatform(cfg, db, net, resolver.DefaultConfig(), StandardVantages(), rand.New(rand.NewPCG(1, 1)))
	campaigns := vp.React(attack)
	if len(campaigns) != 4 {
		t.Fatalf("campaigns = %d, want one per vantage", len(campaigns))
	}
	for _, vc := range campaigns {
		if len(vc.Campaign.Probes) == 0 {
			t.Fatalf("vantage %s made no probes", vc.Vantage.Name)
		}
	}
}

func TestDisagreementsRevealCatchment(t *testing.T) {
	db, net, attack := anycastOutageWorld(t)
	cfg := DefaultConfig()
	cfg.Tail = 0
	// many vantages to guarantee hot and cold catchments are both hit
	var vantages []simnet.Vantage
	for seed := uint64(0); seed < 10; seed++ {
		vantages = append(vantages, simnet.Vantage{Name: "v", RTTScale: 1, CatchmentSeed: seed})
	}
	vp := NewVantagePlatform(cfg, db, net, resolver.DefaultConfig(), vantages, rand.New(rand.NewPCG(2, 2)))
	campaigns := vp.React(attack)
	dis := Disagreements(campaigns)
	if len(dis) == 0 {
		t.Fatal("no disagreement windows")
	}
	var maxSpread float64
	for _, d := range dis {
		if spread := d.Max - d.Min; spread > maxSpread {
			maxSpread = spread
		}
	}
	if maxSpread < 0.3 {
		t.Errorf("max availability spread across vantages = %.2f; catchment should split views", maxSpread)
	}
	// the worst-case union view is at most the per-vantage minimum
	worst := WorstCaseAvailability(campaigns)
	byWindow := map[clock.Window]float64{}
	for _, d := range dis {
		byWindow[d.Window] = d.Min
	}
	for _, wa := range worst {
		if want, ok := byWindow[wa.Window]; ok && wa.Rate() > want+1e-9 {
			t.Errorf("window %v worst-case %.2f above per-vantage min %.2f", wa.Window, wa.Rate(), want)
		}
	}
}

func TestDefaultVantageFallback(t *testing.T) {
	db, net, attack := anycastOutageWorld(t)
	cfg := DefaultConfig()
	cfg.Tail = 0
	vp := NewVantagePlatform(cfg, db, net, resolver.DefaultConfig(), nil, rand.New(rand.NewPCG(3, 3)))
	campaigns := vp.React(attack)
	if len(campaigns) != 1 || campaigns[0].Vantage.Name != "nl-ams" {
		t.Errorf("fallback should be the single NL vantage, got %d campaigns", len(campaigns))
	}
}
