package reactive

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
)

// downTransport fails every query against the listed nameservers inside
// [from, to), and answers quickly otherwise.
type downTransport struct {
	down     map[dnsdb.NameserverID]bool
	from, to time.Time
}

func (d *downTransport) Query(_ *rand.Rand, id dnsdb.NameserverID, t time.Time) (nsset.QueryStatus, time.Duration) {
	if d.down[id] && !t.Before(d.from) && t.Before(d.to) {
		return nsset.StatusTimeout, 0
	}
	return nsset.StatusOK, 10 * time.Millisecond
}

func reactiveWorld(t *testing.T, domains int) (*dnsdb.DB, []dnsdb.NameserverID) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < 3; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0a010001 + i), Provider: pid, BaseRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < domains; i++ {
		db.AddDomain(dnsdb.Domain{Name: "d.example", NS: ids})
	}
	db.Freeze()
	return db, ids
}

func mkAttack(victim netx.Addr, startW, endW clock.Window) rsdos.Attack {
	return rsdos.Attack{ID: 1, Victim: victim, StartWindow: startW, EndWindow: endW}
}

func newTestPlatform(db *dnsdb.DB, tr resolver.Transport, cfg Config) *Platform {
	res := resolver.New(resolver.DefaultConfig(), db, tr)
	return NewPlatform(cfg, db, res, rand.New(rand.NewPCG(1, 1)))
}

func TestCampaignShape(t *testing.T) {
	db, ids := reactiveWorld(t, 120)
	tr := &downTransport{}
	cfg := DefaultConfig()
	cfg.Tail = time.Hour // shorter campaign for the test
	p := newTestPlatform(db, tr, cfg)
	attack := mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1011) // 1 hour
	c := p.React(attack)

	if len(c.Domains) != cfg.MaxDomains {
		t.Errorf("sampled %d domains, want %d", len(c.Domains), cfg.MaxDomains)
	}
	delay := c.Triggered.Sub(attack.Start())
	if delay < 0 || delay > cfg.MaxTriggerDelay {
		t.Errorf("trigger delay = %v", delay)
	}
	// each round: 50 domains × 3 NS probes; rounds run every 5 minutes
	// from trigger until end+tail (the last partial interval still
	// probes, hence the ceiling)
	span := attack.End().Add(cfg.Tail).Sub(c.Triggered)
	rounds := int((span + cfg.Round - 1) / cfg.Round)
	want := rounds * cfg.MaxDomains * 3
	if len(c.Probes) != want {
		t.Errorf("probes = %d, want %d", len(c.Probes), want)
	}
	// all probes exhaustive: every NS appears
	perNS := map[dnsdb.NameserverID]int{}
	for _, pr := range c.Probes {
		perNS[pr.NS]++
	}
	if len(perNS) != 3 {
		t.Errorf("probed %d NSs, want 3", len(perNS))
	}
}

func TestProbesSpreadEvenly(t *testing.T) {
	db, ids := reactiveWorld(t, 100)
	cfg := DefaultConfig()
	cfg.Tail = 0
	p := newTestPlatform(db, &downTransport{}, cfg)
	attack := mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1002)
	c := p.React(attack)
	// the 50 domains of one round spread over 5 minutes ≈ one domain
	// every 6 seconds (§8 ethics)
	var times []time.Time
	seen := map[time.Time]bool{}
	for _, pr := range c.Probes {
		if !seen[pr.Time] {
			seen[pr.Time] = true
			times = append(times, pr.Time)
		}
	}
	if len(times) < 50 {
		t.Fatalf("distinct probe times = %d", len(times))
	}
	gap := times[1].Sub(times[0])
	if gap != 6*time.Second {
		t.Errorf("probe spacing = %v, want 6s for 50 domains / 5 min", gap)
	}
}

func TestSampleCapsAtMaxDomains(t *testing.T) {
	db, ids := reactiveWorld(t, 10) // fewer than MaxDomains
	cfg := DefaultConfig()
	cfg.Tail = 0
	p := newTestPlatform(db, &downTransport{}, cfg)
	c := p.React(mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1001))
	if len(c.Domains) != 10 {
		t.Errorf("domains = %d, want all 10", len(c.Domains))
	}
}

func TestUnknownVictimNoCampaign(t *testing.T) {
	db, _ := reactiveWorld(t, 10)
	p := newTestPlatform(db, &downTransport{}, DefaultConfig())
	c := p.React(mkAttack(netx.MustParseAddr("203.0.113.1"), 1000, 1001))
	if len(c.Domains) != 0 || len(c.Probes) != 0 {
		t.Error("unknown victim should produce an empty campaign")
	}
}

func TestAvailabilityAndRecovery(t *testing.T) {
	db, ids := reactiveWorld(t, 60)
	attack := mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1011)
	// all three nameservers down during the attack, recovering at end
	tr := &downTransport{
		down: map[dnsdb.NameserverID]bool{ids[0]: true, ids[1]: true, ids[2]: true},
		from: attack.Start(), to: attack.End(),
	}
	cfg := DefaultConfig()
	cfg.Tail = 2 * time.Hour
	p := newTestPlatform(db, tr, cfg)
	c := p.React(attack)

	if !c.UnresolvableDuringAttack() {
		t.Error("domain should be unresolvable during the attack")
	}
	rec, ok := c.RecoveryTime(0.9)
	if !ok {
		t.Fatal("should recover after the attack")
	}
	if rec.Before(attack.End()) || rec.After(attack.End().Add(10*time.Minute)) {
		t.Errorf("recovery at %v, attack ended %v", rec, attack.End())
	}
	avail := c.Availability()
	if len(avail) == 0 {
		t.Fatal("no availability windows")
	}
	for _, wa := range avail {
		inAttack := !wa.Window.Start().Before(attack.Start()) && wa.Window.Start().Before(attack.End())
		if inAttack && wa.Rate() > 0 {
			t.Errorf("window %v availability %v during total outage", wa.Window, wa.Rate())
		}
		if !inAttack && wa.Window.Start().After(attack.End()) && wa.Rate() < 1 {
			t.Errorf("window %v availability %v after recovery", wa.Window, wa.Rate())
		}
	}
}

func TestPartialOutagePerNSAttribution(t *testing.T) {
	db, ids := reactiveWorld(t, 60)
	attack := mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1011)
	tr := &downTransport{
		down: map[dnsdb.NameserverID]bool{ids[0]: true}, // only NS 0 down
		from: attack.Start(), to: attack.End(),
	}
	cfg := DefaultConfig()
	cfg.Tail = 0
	p := newTestPlatform(db, tr, cfg)
	c := p.React(attack)
	for _, wa := range c.Availability() {
		if wa.Window.Start().Before(attack.Start()) {
			continue
		}
		ok0 := wa.PerNS[ids[0]]
		ok1 := wa.PerNS[ids[1]]
		if ok0[0] != 0 {
			t.Errorf("NS0 answered %d probes while down", ok0[0])
		}
		if ok1[1] > 0 && ok1[0] != ok1[1] {
			t.Errorf("NS1 availability %d/%d, want full", ok1[0], ok1[1])
		}
		break
	}
}

func TestBusFanOut(t *testing.T) {
	bus := NewBus[int]()
	a := bus.Subscribe(8)
	b := bus.Subscribe(8)
	for i := 0; i < 5; i++ {
		bus.Publish(i)
	}
	bus.Close()
	drain := func(ch <-chan int) []int {
		var out []int
		for v := range ch {
			out = append(out, v)
		}
		return out
	}
	ga, gb := drain(a), drain(b)
	if len(ga) != 5 || len(gb) != 5 {
		t.Fatalf("fanout = %d,%d", len(ga), len(gb))
	}
	for i := 0; i < 5; i++ {
		if ga[i] != i || gb[i] != i {
			t.Error("order not preserved")
		}
	}
}

func TestBusSubscribeAfterClose(t *testing.T) {
	bus := NewBus[int]()
	bus.Close()
	ch := bus.Subscribe(1)
	if _, open := <-ch; open {
		t.Error("subscription after close should be closed")
	}
	bus.Publish(1) // must not panic
	bus.Close()    // idempotent
}

func TestBusConcurrentPublishers(t *testing.T) {
	bus := NewBus[int]()
	ch := bus.Subscribe(1024)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				bus.Publish(i)
			}
		}()
	}
	wg.Wait()
	bus.Close()
	var n int
	for range ch {
		n++
	}
	if n != 800 {
		t.Errorf("received %d messages, want 800", n)
	}
}

func TestWatcherDeduplicates(t *testing.T) {
	db, ids := reactiveWorld(t, 20)
	cfg := DefaultConfig()
	cfg.Tail = 0
	p := newTestPlatform(db, &downTransport{}, cfg)
	w := NewWatcher(p)
	results := NewBus[*Campaign]()
	out := results.Subscribe(16)
	feed := make(chan rsdos.Attack, 4)
	a := mkAttack(db.Nameservers[ids[0]].Addr, 1000, 1002)
	feed <- a
	feed <- a // duplicate feed entry
	close(feed)
	go w.Run(feed, results)
	var n int
	for range out {
		n++
	}
	if n != 1 {
		t.Errorf("campaigns = %d, want 1 after dedup", n)
	}
}
