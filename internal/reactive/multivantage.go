package reactive

import (
	"math/rand/v2"
	"sort"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/simnet"
)

// multivantage.go extends the reactive platform with the §4.3.1/§9 plan the
// paper describes as in progress: probing from several vantage points to
// see through anycast catchment. The per-vantage probing budget still obeys
// the §8 ethical rate limit — the MaxDomains cap applies to each vantage's
// probe stream independently, exactly as independently operated probes
// would.

// VantagePlatform runs one reactive campaign per vantage point.
type VantagePlatform struct {
	cfg      Config
	db       *dnsdb.DB
	resCfg   resolver.Config
	net      *simnet.Net
	vantages []simnet.Vantage
	rng      *rand.Rand
}

// NewVantagePlatform builds a multi-vantage platform over the data plane.
func NewVantagePlatform(cfg Config, db *dnsdb.DB, net *simnet.Net, resCfg resolver.Config, vantages []simnet.Vantage, rng *rand.Rand) *VantagePlatform {
	if len(vantages) == 0 {
		vantages = []simnet.Vantage{simnet.DefaultVantage()}
	}
	return &VantagePlatform{cfg: cfg, db: db, resCfg: resCfg, net: net, vantages: vantages, rng: rng}
}

// VantageCampaign is one vantage's view of an attack.
type VantageCampaign struct {
	Vantage  simnet.Vantage
	Campaign *Campaign
}

// React runs the campaign from every vantage.
func (vp *VantagePlatform) React(a rsdos.Attack) []VantageCampaign {
	out := make([]VantageCampaign, 0, len(vp.vantages))
	for _, v := range vp.vantages {
		res := resolver.New(vp.resCfg, vp.db, vp.net.WithVantage(v))
		p := NewPlatform(vp.cfg, vp.db, res, vp.rng)
		out = append(out, VantageCampaign{Vantage: v, Campaign: p.React(a)})
	}
	return out
}

// VantageDisagreement summarizes how differently the vantages saw one
// window: the spread between the best and worst per-vantage availability.
type VantageDisagreement struct {
	Window clock.Window
	Min    float64
	Max    float64
}

// Disagreements returns, per probed window, the availability spread across
// vantages — nonzero spread is catchment masking made visible.
func Disagreements(campaigns []VantageCampaign) []VantageDisagreement {
	per := map[clock.Window][]float64{}
	for _, vc := range campaigns {
		for _, wa := range vc.Campaign.Availability() {
			per[wa.Window] = append(per[wa.Window], wa.Rate())
		}
	}
	out := make([]VantageDisagreement, 0, len(per))
	for w, rates := range per {
		d := VantageDisagreement{Window: w, Min: rates[0], Max: rates[0]}
		for _, r := range rates {
			if r < d.Min {
				d.Min = r
			}
			if r > d.Max {
				d.Max = r
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}

// WorstCaseAvailability folds the campaigns into the union view the paper's
// future-work section argues for: a domain counts as impaired in a window
// if ANY vantage saw it impaired, so catchment can no longer hide the
// attack.
func WorstCaseAvailability(campaigns []VantageCampaign) []WindowAvailability {
	merged := map[clock.Window]*WindowAvailability{}
	for _, vc := range campaigns {
		for _, wa := range vc.Campaign.Availability() {
			m := merged[wa.Window]
			if m == nil || wa.Rate() < m.Rate() {
				cp := wa
				merged[wa.Window] = &cp
			}
		}
	}
	out := make([]WindowAvailability, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}

// StandardVantages returns a plausible probe deployment: the original NL
// vantage plus US east/west and an APAC site.
func StandardVantages() []simnet.Vantage {
	return []simnet.Vantage{
		simnet.DefaultVantage(),
		{Name: "us-east", RTTScale: 6.5, CatchmentSeed: 101},
		{Name: "us-west", RTTScale: 9.5, CatchmentSeed: 102},
		{Name: "ap-southeast", RTTScale: 14, CatchmentSeed: 103},
	}
}
