package resolver_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
)

// startBigZone serves a domain whose NS RRset encodes past the classic
// 512-byte UDP limit (nsCount servers), forcing TC without EDNS.
func startBigZone(t *testing.T, nsCount int) string {
	t.Helper()
	zone := authserver.NewZone()
	for i := 0; i < nsCount; i++ {
		zone.AddNS("big.example", fmt.Sprintf("ns%03d.big.example", i))
	}
	srv := authserver.NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestQueryWithTCPFallback covers the truncated-UDP → TCP retry path:
// a 40-NS answer cannot fit 512 bytes, the UDP reply carries TC, and the
// fallback retrieves the full RRset over TCP.
func TestQueryWithTCPFallback(t *testing.T) {
	addr := startBigZone(t, 40)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	ctx := context.Background()

	// without fallback: the raw UDP answer is truncated and empty
	m, _, err := client.Query(ctx, addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Truncated || len(m.Answers) != 0 {
		t.Fatalf("expected a truncated empty UDP answer, got TC=%v answers=%d",
			m.Header.Truncated, len(m.Answers))
	}

	// with fallback: the full RRset arrives over TCP
	tcp := &resolver.TCPClient{Timeout: 2 * time.Second}
	full, rtt, err := client.QueryWithTCPFallback(ctx, addr, "big.example", dnswire.TypeNS, tcp)
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated {
		t.Error("TCP answer must not be truncated")
	}
	if len(full.Answers) != 40 {
		t.Errorf("TCP fallback returned %d answers, want 40", len(full.Answers))
	}
	if rtt <= 0 {
		t.Error("fallback RTT must cover both legs")
	}
}

// TestQueryWithTCPFallbackErrors: a failing TCP leg surfaces as an
// error, not a silent truncated answer.
func TestQueryWithTCPFallbackErrors(t *testing.T) {
	addr := startBigZone(t, 40)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	boom := errors.New("tcp path down")
	_, _, err := client.QueryWithTCPFallback(context.Background(), addr, "big.example", dnswire.TypeNS,
		resolver.ClientFunc(func(context.Context, string, string, dnswire.Type) (*dnswire.Message, time.Duration, error) {
			return nil, 0, boom
		}))
	if !errors.Is(err, boom) {
		t.Fatalf("fallback error lost: %v", err)
	}
}

// TestQueryWithTCPFallbackSkipsTCPWhenWhole: small answers never touch
// the TCP path.
func TestQueryWithTCPFallbackSkipsTCPWhenWhole(t *testing.T) {
	addr := startBigZone(t, 2)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	called := false
	m, _, err := client.QueryWithTCPFallback(context.Background(), addr, "big.example", dnswire.TypeNS,
		resolver.ClientFunc(func(context.Context, string, string, dnswire.Type) (*dnswire.Message, time.Duration, error) {
			called = true
			return nil, 0, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("whole UDP answers must not trigger the TCP fallback")
	}
	if len(m.Answers) != 2 {
		t.Errorf("got %d answers, want 2", len(m.Answers))
	}
}

// TestLiveResolverTCPFallback: LiveResolver follows TC transparently and
// reports the transport it used.
func TestLiveResolverTCPFallback(t *testing.T) {
	addr := startBigZone(t, 40)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: time.Second,
		MaxTries:      2,
		TCPFallback:   true,
	}, rand.New(rand.NewPCG(1, 0)))
	out := lr.Resolve(context.Background(), []string{addr}, "big.example", dnswire.TypeNS)
	if out.Status != nsset.StatusOK {
		t.Fatalf("status %v, want OK", out.Status)
	}
	if !out.UsedTCP {
		t.Error("a truncated UDP answer must be completed over TCP")
	}
	if out.Msg == nil || len(out.Msg.Answers) != 40 {
		t.Errorf("fallback answer incomplete: %+v", out.Msg)
	}
}

// TestUDPClientEDNSReadBuffer is the satellite regression: with a large
// advertised EDNS payload the read buffer must grow to match, or the
// kernel silently truncates the datagram and the decode fails. 280 NS
// records encode past 4096 bytes but under the advertised 16384.
func TestUDPClientEDNSReadBuffer(t *testing.T) {
	addr := startBigZone(t, 280)
	client := &resolver.UDPClient{Timeout: 2 * time.Second, EDNSPayload: 16384}
	m, _, err := client.Query(context.Background(), addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("big EDNS response failed to decode — read buffer too small? %v", err)
	}
	if m.Header.Truncated {
		t.Fatal("server truncated despite a sufficient EDNS advertisement")
	}
	if len(m.Answers) != 280 {
		t.Errorf("got %d answers, want 280", len(m.Answers))
	}
	wire, err := dnswire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) <= 4096 {
		t.Fatalf("test answer only %d bytes — does not exercise the >4096 path", len(wire))
	}
}
