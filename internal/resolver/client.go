package resolver

import (
	"context"
	"time"

	"dnsddos/internal/dnswire"
)

// Client is the single query interface over every live transport: one
// question to one server address, one decoded answer, and the round-trip
// time as the client experienced it. UDPClient implements it as a plain
// datagram exchange, TCPClient as a length-prefixed stream exchange
// (RFC 1035 §4.2.2), and LiveResolver as a full retrying resolution
// (rotation, backoff, TC→TCP fallback) collapsed onto a single address.
//
// Callers that only need "ask addr this question" — the dnsload
// generator, the livedns example, the UDP client's truncation fallback —
// take a Client and stay transport-agnostic.
type Client interface {
	// Query sends one question to the server at addr ("host:port") and
	// returns the decoded response and the measured round-trip time.
	Query(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error)
}

// ClientFunc adapts a plain function to the Client interface, the usual
// func-adapter idiom (http.HandlerFunc) for stubs and fault injection.
type ClientFunc func(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error)

// Query calls f.
func (f ClientFunc) Query(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	return f(ctx, addr, name, qtype)
}

var (
	_ Client = (*UDPClient)(nil)
	_ Client = (*TCPClient)(nil)
	_ Client = (*LiveResolver)(nil)
	_ Client = (ClientFunc)(nil)
)
