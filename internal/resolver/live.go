// live.go gives the real-socket path the same resolution semantics the
// simulated agnostic resolver has (resolver.go): random nameserver
// rotation, per-try timeout, retry with jittered exponential backoff,
// SERVFAIL vs timeout classification, and TC→TCP fallback. A LiveResolver
// outcome carries an nsset.QueryStatus, so live runs against
// internal/authserver feed the same nsset aggregation (Eq. 1) as
// simulated sweeps — the point of the fault-injection data plane.
package resolver

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/resilience"
)

// LiveConfig tunes the live resolver. The zero value resolves with the
// DefaultLiveConfig semantics.
type LiveConfig struct {
	// PerTryTimeout bounds one query attempt; zero means 800ms
	// (mirroring DefaultConfig for the simulated resolver).
	PerTryTimeout time.Duration
	// MaxTries bounds total attempts. It may exceed the nameserver list
	// length: attempts rotate through the shuffled list, wrapping
	// around, the way unbound re-probes servers it has already tried.
	// Zero means 3.
	MaxTries int
	// Backoff is the base delay before the second try; later tries grow
	// it with decorrelated jitter (resilience.RetryBudget) up to
	// MaxBackoff. Zero disables backoff — retries go out immediately, as
	// unbound does within its first burst.
	Backoff time.Duration
	// MaxBackoff caps the backoff growth; zero means 2s.
	MaxBackoff time.Duration
	// BreakerThreshold, when > 0, enables per-server circuit breaking
	// (resilience.Breaker): a server that times out or errors this many
	// times in a row is skipped in rotation until BreakerCooldown
	// elapses, then probed half-open. A SERVFAIL answer counts as the
	// server being up. Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open server circuit refuses
	// attempts before a probe; zero means 2s.
	BreakerCooldown time.Duration
	// EDNSPayload is advertised on UDP queries when nonzero.
	EDNSPayload uint16
	// TCPFallback retries truncated UDP answers over TCP (RFC 7766).
	TCPFallback bool
	// Wrap, when set, wraps every UDP client socket — the client-side
	// fault-injection hook.
	Wrap func(net.Conn) net.Conn
	// WrapTCP wraps fallback TCP connections.
	WrapTCP func(net.Conn) net.Conn
	// Metrics, when non-nil, receives per-try RTTs and retry/fallback
	// outcome counts under resolver.live.* names. Nil disables
	// instrumentation at the cost of one branch per observation.
	Metrics *obs.Registry
}

// DefaultLiveConfig mirrors a conservative unbound setup, matching the
// simulated DefaultConfig plus a short backoff between retries and a
// per-server circuit breaker sized for DDoS conditions: a nameserver
// that is down stops costing per-try timeouts after eight straight
// failures.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{
		PerTryTimeout:    800 * time.Millisecond,
		MaxTries:         3,
		Backoff:          resilience.DefaultBase,
		MaxBackoff:       resilience.DefaultCap,
		TCPFallback:      true,
		BreakerThreshold: 8,
		BreakerCooldown:  resilience.DefaultCap,
	}
}

// LiveOutcome is the result of one live resolution, shaped like the
// simulated Outcome so both feed nsset.Aggregator.Add identically.
type LiveOutcome struct {
	// Status classifies the resolution with the OpenINTEL statuses the
	// paper's analysis consumes (OK / TIMEOUT / SERVFAIL).
	Status nsset.QueryStatus
	// RTT is the total resolution time including time burned by failed
	// attempts and backoff, as the measuring resolver experiences it
	// (§4.1's RTT). Zero unless Status is StatusOK.
	RTT time.Duration
	// Tries is the number of attempts made.
	Tries int
	// Server is the address that produced the final answer (or the last
	// one tried on failure).
	Server string
	// UsedTCP reports whether the final answer arrived over the TCP
	// fallback path.
	UsedTCP bool
	// Msg is the decoded answer; nil on failure.
	Msg *dnswire.Message
}

// LiveResolver resolves over real sockets with retry, rotation, and
// backoff. It is safe for concurrent use.
type LiveResolver struct {
	cfg     LiveConfig
	m       liveMetrics
	budget  *resilience.RetryBudget
	breaker *resilience.Breaker // nil when BreakerThreshold == 0

	mu  sync.Mutex
	rng *rand.Rand
}

// liveMetrics instruments the live resolution path: one histogram per
// attempt (tryRTT, successes and failures alike — the time each try
// burned) and one per completed resolution (rtt, the cumulative Eq. 1
// RTT on success), plus counters classifying tries and final outcomes.
// All fields are nil (no-ops) when LiveConfig.Metrics is nil.
type liveMetrics struct {
	tries        *obs.Counter
	tryTimeouts  *obs.Counter
	tryServFails *obs.Counter
	tryErrors    *obs.Counter
	tcpFallbacks *obs.Counter
	ok           *obs.Counter
	servfail     *obs.Counter
	timeout      *obs.Counter
	breakerOpens *obs.Counter
	breakerSkips *obs.Counter
	tryRTT       *obs.Histogram
	rtt          *obs.Histogram
}

func newLiveMetrics(reg *obs.Registry) liveMetrics {
	return liveMetrics{
		tries:        reg.Counter("resolver.live.tries"),
		tryTimeouts:  reg.Counter("resolver.live.try_timeouts"),
		tryServFails: reg.Counter("resolver.live.try_servfails"),
		tryErrors:    reg.Counter("resolver.live.try_errors"),
		tcpFallbacks: reg.Counter("resolver.live.tcp_fallbacks"),
		ok:           reg.Counter("resolver.live.resolved_ok"),
		servfail:     reg.Counter("resolver.live.resolved_servfail"),
		timeout:      reg.Counter("resolver.live.resolved_timeout"),
		breakerOpens: reg.Counter("resolver.live.breaker_opens"),
		breakerSkips: reg.Counter("resolver.live.breaker_skips"),
		tryRTT:       reg.Histogram("resolver.live.try_rtt"),
		rtt:          reg.Histogram("resolver.live.rtt"),
	}
}

// NewLiveResolver builds a live resolver. rng drives shuffle order and
// backoff jitter; nil seeds one from crypto/rand (tests pass a seeded
// generator for determinism, per the repo convention).
func NewLiveResolver(cfg LiveConfig, rng *rand.Rand) *LiveResolver {
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = 800 * time.Millisecond
	}
	if cfg.MaxTries < 1 {
		cfg.MaxTries = 3
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if rng == nil {
		var seed [16]byte
		crand.Read(seed[:])
		rng = rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(seed[:8]),
			binary.LittleEndian.Uint64(seed[8:])))
	}
	r := &LiveResolver{cfg: cfg, m: newLiveMetrics(cfg.Metrics), rng: rng}
	// the budget gets a derived generator: it locks its own jitter draws,
	// so sharing the shuffle rng would double-lock and couple the streams
	r.budget = resilience.NewRetryBudget(cfg.MaxTries, cfg.Backoff, cfg.MaxBackoff,
		rand.New(rand.NewPCG(rng.Uint64(), rng.Uint64())))
	if cfg.BreakerThreshold > 0 {
		r.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
			OnStateChange: func(_ string, _, to resilience.BreakerState) {
				if to == resilience.BreakerOpen {
					r.m.breakerOpens.Inc()
				}
			},
		})
	}
	return r
}

// tryStatus classifies one attempt.
type tryStatus int

const (
	tryOK tryStatus = iota
	tryTimeout
	tryServFail
	tryOther // dial/send/decode errors — server unreachable or garbage
)

// Resolve performs an agnostic live resolution of (name, qtype) against
// the nameserver address list: random rotation order, per-try timeout,
// jittered exponential backoff between attempts, cumulative timing. The
// final status mirrors the simulated resolver: OK on any success, else
// SERVFAIL if any server answered with a failure rcode, else TIMEOUT.
func (r *LiveResolver) Resolve(ctx context.Context, addrs []string, name string, qtype dnswire.Type) LiveOutcome {
	if len(addrs) == 0 {
		return LiveOutcome{Status: nsset.StatusServFail}
	}
	order := make([]string, len(addrs))
	copy(order, addrs)
	r.mu.Lock()
	r.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	r.mu.Unlock()

	client := &UDPClient{
		Timeout:     r.cfg.PerTryTimeout,
		EDNSPayload: r.cfg.EDNSPayload,
		Wrap:        r.cfg.Wrap,
	}
	start := time.Now()
	sawServFail := false
	var last string
	tries := 0
	sess := r.budget.Session()
	for i := 0; ; i++ {
		// Wait charges the attempt against the shared retry budget and
		// paces it with decorrelated jitter; false = out of tries or ctx
		// cancelled mid-backoff.
		if !sess.Wait(ctx) {
			break
		}
		addr := r.pickServer(order, i)
		last = addr
		tries++
		r.m.tries.Inc()
		tryStart := time.Now()
		msg, usedTCP, st := r.tryOnce(ctx, client, addr, name, qtype)
		r.m.tryRTT.Observe(time.Since(tryStart))
		if usedTCP {
			r.m.tcpFallbacks.Inc()
		}
		// a SERVFAIL still proves the server is up: only timeouts and
		// transport errors count against its circuit
		r.breaker.Record(addr, st == tryOK || st == tryServFail, time.Now())
		switch st {
		case tryOK:
			rtt := time.Since(start)
			r.m.ok.Inc()
			r.m.rtt.Observe(rtt)
			return LiveOutcome{
				Status:  nsset.StatusOK,
				RTT:     rtt,
				Tries:   tries,
				Server:  addr,
				UsedTCP: usedTCP,
				Msg:     msg,
			}
		case tryServFail:
			r.m.tryServFails.Inc()
			sawServFail = true
		case tryTimeout:
			r.m.tryTimeouts.Inc()
		case tryOther:
			r.m.tryErrors.Inc()
		}
	}
	st := nsset.StatusTimeout
	if sawServFail {
		st = nsset.StatusServFail
		r.m.servfail.Inc()
	} else {
		r.m.timeout.Inc()
	}
	return LiveOutcome{Status: st, Tries: tries, Server: last}
}

// Query implements the Client interface: one full retrying resolution
// against a single server address. A non-OK outcome (all tries timed out
// or failed) surfaces as an error; the RTT on success is the cumulative
// resolution time including retries and backoff (the Eq. 1 RTT).
func (r *LiveResolver) Query(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	o := r.Resolve(ctx, []string{addr}, name, qtype)
	if o.Status != nsset.StatusOK {
		return nil, 0, fmt.Errorf("resolver: live query %s for %s: %s after %d tries", addr, name, o.Status, o.Tries)
	}
	return o.Msg, o.RTT, nil
}

// tryOnce runs one attempt: UDP query, rcode classification, TC→TCP
// fallback when configured.
func (r *LiveResolver) tryOnce(ctx context.Context, client *UDPClient, addr, name string, qtype dnswire.Type) (*dnswire.Message, bool, tryStatus) {
	msg, _, err := client.Query(ctx, addr, name, qtype)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, false, tryTimeout
		}
		return nil, false, tryOther
	}
	if msg.Header.Truncated && r.cfg.TCPFallback {
		tc := &TCPClient{Timeout: r.cfg.PerTryTimeout, Wrap: r.cfg.WrapTCP}
		full, _, terr := tc.Query(ctx, addr, name, qtype)
		if terr != nil {
			var nerr net.Error
			if errors.As(terr, &nerr) && nerr.Timeout() {
				return nil, false, tryTimeout
			}
			return nil, false, tryOther
		}
		msg = full
		if st := classifyRCode(msg.Header.RCode); st != tryOK {
			return nil, true, st
		}
		return msg, true, tryOK
	}
	if st := classifyRCode(msg.Header.RCode); st != tryOK {
		return nil, false, st
	}
	return msg, false, tryOK
}

// classifyRCode maps a response code to an attempt status: SERVFAIL and
// REFUSED mean the server is up but failing (retry elsewhere); NOERROR
// and NXDOMAIN are authoritative answers (OK).
func classifyRCode(rc dnswire.RCode) tryStatus {
	switch rc {
	case dnswire.RCodeNoError, dnswire.RCodeNXDomain:
		return tryOK
	default:
		return tryServFail
	}
}

// pickServer returns the rotation's server for attempt i, skipping
// servers whose circuit is open. When every server's circuit refuses,
// the scheduled one is probed anyway — refusing all peers forever would
// turn a partial outage into a total one.
func (r *LiveResolver) pickServer(order []string, i int) string {
	if r.breaker == nil {
		return order[i%len(order)]
	}
	now := time.Now()
	for k := 0; k < len(order); k++ {
		cand := order[(i+k)%len(order)]
		if r.breaker.Allow(cand, now) {
			if k > 0 {
				r.m.breakerSkips.Add(int64(k))
			}
			return cand
		}
	}
	r.m.breakerSkips.Add(int64(len(order)))
	return order[i%len(order)]
}
