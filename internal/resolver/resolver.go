// Package resolver implements the measurement platform's stub resolver.
//
// The agnostic mode reproduces OpenINTEL's unbound behaviour (§3.2): for
// each registered domain it picks an authoritative nameserver uniformly at
// random for the first query, retrying against other nameservers on
// failure within a bounded budget. Because retries burn time, a partially
// degraded NSSet shows up as inflated resolution RTT, and a fully degraded
// one as TIMEOUT/SERVFAIL — exactly the signals the paper's Eq. 1 and
// failure analysis consume.
//
// The exhaustive mode queries one specific nameserver (no retries); the
// reactive measurement platform (§4.3.1) uses it to probe every
// authoritative server of a domain under attack individually.
package resolver

import (
	"math/rand/v2"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/simnet"
)

// Transport issues a single DNS query to a nameserver at a simulated time.
// *simnet.Net implements it; tests substitute fakes.
type Transport interface {
	Query(rng *rand.Rand, id dnsdb.NameserverID, t time.Time) (nsset.QueryStatus, time.Duration)
}

// Config tunes the resolver.
type Config struct {
	// PerTryTimeout is how long one query attempt may take before the
	// resolver moves on; a timed-out attempt contributes this much to
	// the measured resolution time.
	PerTryTimeout time.Duration
	// MaxTries bounds the number of nameservers tried per resolution.
	MaxTries int
	// FollowDelegation makes the resolver bootstrap from the parent-side
	// delegation (as a cold-cache recursive resolver does) and treat
	// parent-listed servers that are not in the zone's own NS set as
	// lame: they answer, but not authoritatively, burning a round trip.
	// OpenINTEL's explicit-NS behaviour — preferring the child — is the
	// FollowDelegation=true path (§3.2).
	FollowDelegation bool
}

// DefaultConfig mirrors a conservative unbound setup: sub-second per-try
// timeout, up to three nameservers tried.
func DefaultConfig() Config {
	return Config{PerTryTimeout: 800 * time.Millisecond, MaxTries: 3, FollowDelegation: true}
}

// Outcome is the result of one resolution or probe.
type Outcome struct {
	Status nsset.QueryStatus
	// RTT is the total resolution time, including time burned by failed
	// attempts before a success. Zero unless Status is StatusOK.
	RTT time.Duration
	// Tries is the number of attempts made.
	Tries int
	// NS is the nameserver that produced the final answer (or the last
	// one tried on failure).
	NS dnsdb.NameserverID
}

// Resolver performs agnostic and exhaustive resolution over a Transport.
type Resolver struct {
	cfg Config
	db  *dnsdb.DB
	tr  Transport
}

// New builds a resolver for the given world and transport.
func New(cfg Config, db *dnsdb.DB, tr Transport) *Resolver {
	if cfg.MaxTries < 1 {
		cfg.MaxTries = 1
	}
	return &Resolver{cfg: cfg, db: db, tr: tr}
}

// Resolve performs an agnostic resolution of domain d at time t: random
// nameserver order, retry on failure, cumulative timing.
//
// With FollowDelegation set, the candidate order starts from the
// parent-side delegation; a parent-listed server missing from the zone's
// own NS set is lame — it responds (non-authoritatively), the resolver
// discards the answer, and it falls through to the child-set servers the
// lame referral pointed away from.
func (r *Resolver) Resolve(rng *rand.Rand, d dnsdb.DomainID, t time.Time) Outcome {
	dom := &r.db.Domains[d]
	ns := dom.NS
	boot := ns
	if r.cfg.FollowDelegation {
		boot = dom.DelegationNS()
	}
	if len(boot) == 0 {
		return Outcome{Status: nsset.StatusServFail}
	}
	child := make(map[dnsdb.NameserverID]bool, len(ns))
	for _, id := range ns {
		child[id] = true
	}
	// random bootstrap order; stale delegations may omit child servers,
	// so append any missing child servers after the delegation set (the
	// explicit NS query reveals them)
	order := make([]dnsdb.NameserverID, len(boot))
	copy(order, boot)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	if r.cfg.FollowDelegation && dom.Inconsistent() {
		inBoot := make(map[dnsdb.NameserverID]bool, len(boot))
		for _, id := range boot {
			inBoot[id] = true
		}
		for _, id := range ns {
			if !inBoot[id] {
				order = append(order, id)
			}
		}
	}

	tries := min(r.cfg.MaxTries, len(order))
	var elapsed time.Duration
	sawServFail := false
	var last dnsdb.NameserverID
	for i := 0; i < tries; i++ {
		id := order[i]
		last = id
		status, rtt := r.tr.Query(rng, id, t.Add(elapsed))
		if status == nsset.StatusOK && rtt >= r.cfg.PerTryTimeout {
			// the answer exists but arrives after the resolver gave
			// up on this server — a timed-out try
			status = nsset.StatusTimeout
		}
		if status == nsset.StatusOK && !child[id] {
			// lame delegation: the server answered, but it is not
			// authoritative for this zone (Akiwate et al., cited in
			// §7); the answer is discarded and the round trip
			// charged
			sawServFail = true
			elapsed += rtt
			continue
		}
		switch status {
		case nsset.StatusOK:
			return Outcome{Status: nsset.StatusOK, RTT: elapsed + rtt, Tries: i + 1, NS: id}
		case nsset.StatusServFail:
			sawServFail = true
			// a SERVFAIL comes back quickly; charge a nominal
			// round trip before the next try
			elapsed += r.db.Nameservers[id].BaseRTT
		default: // timeout
			elapsed += r.cfg.PerTryTimeout
		}
	}
	st := nsset.StatusTimeout
	if sawServFail {
		st = nsset.StatusServFail
	}
	return Outcome{Status: st, Tries: tries, NS: last}
}

// QueryNS probes one specific nameserver once (exhaustive mode).
func (r *Resolver) QueryNS(rng *rand.Rand, id dnsdb.NameserverID, t time.Time) Outcome {
	status, rtt := r.tr.Query(rng, id, t)
	o := Outcome{Status: status, Tries: 1, NS: id}
	if status == nsset.StatusOK {
		o.RTT = rtt
	}
	return o
}

// DB returns the world the resolver operates on.
func (r *Resolver) DB() *dnsdb.DB { return r.db }

var _ Transport = (*simnet.Net)(nil)
