package resolver_test

import (
	"context"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
)

// TestLiveResolverMetrics cross-checks the obs instrumentation against
// the outcomes the resolver itself reports: every try shows up in the
// tries counter and the try-RTT histogram, and the final-status
// counters agree with the returned statuses. The leak guard also pins
// that resolutions spawn no stray goroutines.
func TestLiveResolverMetrics(t *testing.T) {
	netx.NoGoroutineLeaks(t)

	inj := faultinject.New(7)
	inj.SetProfile(faultinject.Profile{Drop: 0.5})
	addr := startAuth(t, nil)
	reg := obs.New()
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 150 * time.Millisecond,
		MaxTries:      6,
		Backoff:       5 * time.Millisecond,
		Wrap:          func(c net.Conn) net.Conn { return faultinject.WrapDatagram(c, inj) },
		Metrics:       reg,
	}, rand.New(rand.NewPCG(4, 0)))

	var wantTries, wantOK, wantTimeout int64
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		out := lr.Resolve(ctx, []string{addr}, "victim.example", dnswire.TypeNS)
		wantTries += int64(out.Tries)
		switch out.Status {
		case nsset.StatusOK:
			wantOK++
		case nsset.StatusTimeout:
			wantTimeout++
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["resolver.live.tries"]; got != wantTries {
		t.Errorf("tries counter %d, resolver reported %d", got, wantTries)
	}
	if got := snap.Histograms["resolver.live.try_rtt"].Count; got != wantTries {
		t.Errorf("try-RTT histogram holds %d samples, want one per try (%d)", got, wantTries)
	}
	if got := snap.Counters["resolver.live.resolved_ok"]; got != wantOK {
		t.Errorf("resolved_ok %d, want %d", got, wantOK)
	}
	if got := snap.Counters["resolver.live.resolved_timeout"]; got != wantTimeout {
		t.Errorf("resolved_timeout %d, want %d", got, wantTimeout)
	}
	if got := snap.Histograms["resolver.live.rtt"].Count; got != wantOK {
		t.Errorf("resolution-RTT histogram holds %d samples, want one per success (%d)", got, wantOK)
	}
	// failed tries burn at least nothing and at most the per-try timeout
	// plus scheduling slack; the histogram max must be sane
	if max := snap.Histograms["resolver.live.try_rtt"].MaxNS; max <= 0 {
		t.Error("try-RTT histogram recorded no positive duration")
	}
	if wantOK == 0 {
		t.Error("seeded half-loss run resolved nothing; metric assertions were vacuous")
	}
}

// TestLiveResolverMetricsServFail: rcode failures land in the servfail
// counters, not the timeout ones.
func TestLiveResolverMetricsServFail(t *testing.T) {
	netx.NoGoroutineLeaks(t)

	addr := startServFail(t)
	reg := obs.New()
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 200 * time.Millisecond,
		MaxTries:      2,
		Metrics:       reg,
	}, rand.New(rand.NewPCG(1, 0)))
	out := lr.Resolve(context.Background(), []string{addr}, "victim.example", dnswire.TypeNS)
	if out.Status != nsset.StatusServFail {
		t.Fatalf("status %v, want SERVFAIL", out.Status)
	}
	snap := reg.Snapshot()
	if snap.Counters["resolver.live.resolved_servfail"] != 1 {
		t.Errorf("resolved_servfail = %d, want 1", snap.Counters["resolver.live.resolved_servfail"])
	}
	if snap.Counters["resolver.live.try_servfails"] != 2 {
		t.Errorf("try_servfails = %d, want 2 (both tries answered SERVFAIL)", snap.Counters["resolver.live.try_servfails"])
	}
	if snap.Counters["resolver.live.resolved_timeout"] != 0 {
		t.Error("SERVFAIL resolution must not count as timeout")
	}
}
