package resolver

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"dnsddos/internal/dnswire"
)

// TCPClient issues length-prefixed DNS queries over TCP (RFC 1035
// §4.2.2) — the fallback transport a stub resolver switches to when a
// UDP answer comes back truncated, and the protocol most attacks in the
// study target (§6.2).
type TCPClient struct {
	// Timeout bounds one query exchange (dial + write + read); zero
	// means 5s, or the context deadline if sooner.
	Timeout time.Duration
	// Wrap, when set, wraps the dialed connection — the fault-injection
	// hook (e.g. faultinject.WrapStream).
	Wrap func(net.Conn) net.Conn
}

// Query sends one question over TCP and returns the decoded response and
// the round-trip time of the whole exchange (dial through decode — what a
// stub resolver falling back to TCP experiences). The response ID must
// match the query ID (anti-spoofing, mirroring the UDP client's check).
func (c *TCPClient) Query(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	start := time.Now()
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("resolver: tcp dial %s: %w", addr, err)
	}
	defer conn.Close()
	if c.Wrap != nil {
		conn = c.Wrap(conn)
	}
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, 0, err
	}
	var idb [2]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, 0, err
	}
	id := binary.BigEndian.Uint16(idb[:])
	q := dnswire.NewQuery(id, name, qtype)
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, 0, err
	}
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		return nil, 0, fmt.Errorf("resolver: tcp send: %w", err)
	}
	var lenb [2]byte
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		return nil, 0, fmt.Errorf("resolver: tcp recv: %w", err)
	}
	buf := make([]byte, binary.BigEndian.Uint16(lenb[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, 0, fmt.Errorf("resolver: tcp recv: %w", err)
	}
	rtt := time.Since(start)
	m, err := dnswire.Decode(buf)
	if err != nil {
		return nil, 0, err
	}
	if m.Header.ID != id {
		return nil, 0, fmt.Errorf("resolver: tcp response ID %#04x does not match query ID %#04x", m.Header.ID, id)
	}
	return m, rtt, nil
}
