package resolver_test

import (
	"context"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
)

// startAuth brings up an authoritative server for victim.example, with
// an optional fault injector on its listener.
func startAuth(t *testing.T, inj *faultinject.Injector) string {
	t.Helper()
	zone := authserver.NewZone()
	zone.AddNS("victim.example", "ns1.victim.example")
	zone.AddA("ns1.victim.example", netx.MustParseAddr("192.0.2.1"))
	srv := authserver.NewServer(zone, nil)
	if inj != nil {
		srv.WrapUDP = func(pc net.PacketConn) net.PacketConn {
			return faultinject.WrapPacketConn(pc, inj)
		}
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// startServFail runs a minimal UDP responder that answers every query
// with SERVFAIL.
func startServFail(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			n, peer, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			if n < 12 || buf[2]&0x80 != 0 {
				continue
			}
			buf[2] |= 0x80
			buf[3] = byte(dnswire.RCodeServFail)
			pc.WriteTo(buf[:n], peer)
		}
	}()
	return pc.LocalAddr().String()
}

// TestLiveResolverRotationSurvivesPartialOutage is the acceptance
// scenario: a 3-NS set where two servers black-hole everything still
// resolves — retries rotate onto the healthy server, burning per-try
// timeouts that show up as inflated RTT — while a 1-NS set pointing at a
// dead server only times out.
func TestLiveResolverRotationSurvivesPartialOutage(t *testing.T) {
	dead := faultinject.New(11)
	dead.SetProfile(faultinject.Profile{Drop: 1})
	deadA := startAuth(t, dead)
	deadB := startAuth(t, dead)
	healthy := startAuth(t, nil)

	perTry := 200 * time.Millisecond
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: perTry,
		MaxTries:      3,
		Backoff:       5 * time.Millisecond,
	}, rand.New(rand.NewPCG(3, 0)))

	addrs := []string{deadA, deadB, healthy}
	ctx := context.Background()
	sawRetry := false
	for i := 0; i < 5; i++ {
		out := lr.Resolve(ctx, addrs, "victim.example", dnswire.TypeNS)
		if out.Status != nsset.StatusOK {
			t.Fatalf("run %d: 3-NS set must resolve, got %v after %d tries", i, out.Status, out.Tries)
		}
		if out.Server != healthy {
			t.Errorf("run %d: answer attributed to %s, want the healthy server %s", i, out.Server, healthy)
		}
		if out.Tries > 1 {
			sawRetry = true
			if out.RTT < perTry {
				t.Errorf("run %d: %d tries but RTT %v < one per-try timeout %v — retries must inflate RTT",
					i, out.Tries, out.RTT, perTry)
			}
		}
		if out.Msg == nil || len(out.Msg.Answers) == 0 {
			t.Errorf("run %d: missing answer message", i)
		}
	}
	if !sawRetry {
		t.Error("seeded shuffles never picked a dead server first; rotation untested")
	}

	// the same resolver against only a dead server: timeout, all tries
	out := lr.Resolve(ctx, []string{deadA}, "victim.example", dnswire.TypeNS)
	if out.Status != nsset.StatusTimeout {
		t.Fatalf("1-NS dead set: status %v, want TIMEOUT", out.Status)
	}
	if out.Tries != 3 {
		t.Errorf("1-NS dead set: %d tries, want MaxTries=3 (rotation must wrap a short list)", out.Tries)
	}
	if out.RTT != 0 {
		t.Errorf("failed resolution must not report an RTT, got %v", out.RTT)
	}
}

// TestLiveResolverClientSideLoss drives the resolver through a lossy
// client socket: 100% loss times out every try; 50% loss (seeded) still
// resolves within the retry budget, exercising backoff and rotation.
func TestLiveResolverClientSideLoss(t *testing.T) {
	addr := startAuth(t, nil)
	ctx := context.Background()

	t.Run("total-loss", func(t *testing.T) {
		inj := faultinject.New(21)
		inj.SetProfile(faultinject.Profile{Drop: 1})
		lr := resolver.NewLiveResolver(resolver.LiveConfig{
			PerTryTimeout: 100 * time.Millisecond,
			MaxTries:      4,
			Wrap:          func(c net.Conn) net.Conn { return faultinject.WrapDatagram(c, inj) },
		}, rand.New(rand.NewPCG(1, 0)))
		out := lr.Resolve(ctx, []string{addr}, "victim.example", dnswire.TypeNS)
		if out.Status != nsset.StatusTimeout || out.Tries != 4 {
			t.Fatalf("100%% loss: got %v after %d tries, want TIMEOUT after 4", out.Status, out.Tries)
		}
	})

	t.Run("half-loss", func(t *testing.T) {
		inj := faultinject.New(42)
		inj.SetProfile(faultinject.Profile{Drop: 0.5})
		lr := resolver.NewLiveResolver(resolver.LiveConfig{
			PerTryTimeout: 150 * time.Millisecond,
			MaxTries:      8,
			Backoff:       5 * time.Millisecond,
			Wrap:          func(c net.Conn) net.Conn { return faultinject.WrapDatagram(c, inj) },
		}, rand.New(rand.NewPCG(2, 0)))
		okCount, retries := 0, 0
		for i := 0; i < 6; i++ {
			out := lr.Resolve(ctx, []string{addr}, "victim.example", dnswire.TypeNS)
			if out.Status == nsset.StatusOK {
				okCount++
				retries += out.Tries - 1
			}
		}
		if okCount != 6 {
			t.Errorf("50%% loss with 8 tries: %d/6 resolved; the retry budget should absorb this seed's losses", okCount)
		}
		if retries == 0 {
			t.Error("50%% loss never forced a retry; loss path untested")
		}
	})
}

// TestLiveResolverServFail checks rcode classification: a set whose only
// server answers SERVFAIL classifies the whole resolution as SERVFAIL
// (not timeout), mirroring the simulated resolver.
func TestLiveResolverServFail(t *testing.T) {
	addr := startServFail(t)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 200 * time.Millisecond,
		MaxTries:      2,
	}, rand.New(rand.NewPCG(1, 0)))
	out := lr.Resolve(context.Background(), []string{addr}, "victim.example", dnswire.TypeNS)
	if out.Status != nsset.StatusServFail {
		t.Fatalf("status %v, want SERVFAIL", out.Status)
	}
	if out.Tries != 2 {
		t.Errorf("SERVFAIL must be retried: %d tries, want 2", out.Tries)
	}
}

// TestLiveResolverMixedSet: one SERVFAIL server and one healthy server —
// rotation must find the healthy one and return OK.
func TestLiveResolverMixedSet(t *testing.T) {
	bad := startServFail(t)
	good := startAuth(t, nil)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 200 * time.Millisecond,
		MaxTries:      2,
	}, rand.New(rand.NewPCG(9, 0)))
	for i := 0; i < 4; i++ {
		out := lr.Resolve(context.Background(), []string{bad, good}, "victim.example", dnswire.TypeNS)
		if out.Status != nsset.StatusOK {
			t.Fatalf("run %d: mixed set must resolve, got %v", i, out.Status)
		}
	}
}

// TestLiveResolverFeedsAggregator closes the loop the tentpole is for:
// live outcomes stream into the same nsset.Aggregator the simulated
// sweeps use, and Eq. 1 comes out the other side.
func TestLiveResolverFeedsAggregator(t *testing.T) {
	addr := startAuth(t, nil)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 500 * time.Millisecond,
		MaxTries:      2,
	}, rand.New(rand.NewPCG(1, 0)))
	agg := nsset.NewAggregator()
	key := nsset.KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.1")})
	base := time.Date(2022, 3, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		out := lr.Resolve(context.Background(), []string{addr}, "victim.example", dnswire.TypeNS)
		agg.Add(key, base.Add(time.Duration(i)*time.Minute), out.Status, out.RTT)
	}
	w := agg.Windows(key)
	if len(w) == 0 {
		t.Fatal("no windows aggregated from live outcomes")
	}
	var ok int
	for _, m := range w {
		ok += m.OKCount
	}
	if ok != 5 {
		t.Errorf("aggregated %d OK samples, want 5", ok)
	}
	if w[0].AvgRTT() <= 0 {
		t.Error("live RTTs must aggregate to a positive window average")
	}
}

// TestLiveResolverContextCancel: a cancelled context stops the retry
// loop promptly.
func TestLiveResolverContextCancel(t *testing.T) {
	dead := faultinject.New(5)
	dead.SetProfile(faultinject.Profile{Drop: 1})
	addr := startAuth(t, dead)
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 5 * time.Second,
		MaxTries:      10,
	}, rand.New(rand.NewPCG(1, 0)))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	out := lr.Resolve(ctx, []string{addr}, "victim.example", dnswire.TypeNS)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled resolution took %v", d)
	}
	if out.Status == nsset.StatusOK {
		t.Fatal("cancelled resolution cannot succeed")
	}
}

// TestLiveResolverEmptySet mirrors the simulated resolver: no servers is
// an immediate SERVFAIL.
func TestLiveResolverEmptySet(t *testing.T) {
	lr := resolver.NewLiveResolver(resolver.LiveConfig{}, rand.New(rand.NewPCG(1, 0)))
	out := lr.Resolve(context.Background(), nil, "victim.example", dnswire.TypeNS)
	if out.Status != nsset.StatusServFail || out.Tries != 0 {
		t.Fatalf("empty set: %+v, want immediate SERVFAIL", out)
	}
}

// TestLiveResolverBreakerIsolatesDeadServer: with circuit breaking
// enabled, a server that keeps failing is opened and skipped in
// rotation — resolutions keep landing on the healthy server without
// burning tries on the dead one.
func TestLiveResolverBreakerIsolatesDeadServer(t *testing.T) {
	healthy := startAuth(t, nil)
	// a freshly closed port: queries fail fast with a refused error
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := pc.LocalAddr().String()
	pc.Close()

	reg := obs.New()
	r := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout:    300 * time.Millisecond,
		MaxTries:         4,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // longer than the test: no reprobe
		Metrics:          reg,
	}, rand.New(rand.NewPCG(7, 7)))

	for i := 0; i < 12; i++ {
		o := r.Resolve(context.Background(), []string{healthy, dead},
			"victim.example", dnswire.TypeNS)
		if o.Status != nsset.StatusOK {
			t.Fatalf("resolve %d: status %s after %d tries", i, o.Status, o.Tries)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["resolver.live.breaker_opens"]; got != 1 {
		t.Errorf("breaker_opens = %d, want 1 (one dead server)", got)
	}
	if got := snap.Counters["resolver.live.breaker_skips"]; got == 0 {
		t.Error("breaker never skipped the open server")
	}
}
