package resolver

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// delegationDB builds a world with three healthy child nameservers plus one
// lame server (another provider's) that a stale parent delegation lists.
func delegationDB(t *testing.T) (*dnsdb.DB, dnsdb.DomainID, dnsdb.NameserverID) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "Current"})
	old := db.AddProvider(dnsdb.Provider{Name: "Previous"})
	var child []dnsdb.NameserverID
	for i := 0; i < 3; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0c000001 + i*256), Provider: pid, BaseRTT: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		child = append(child, id)
	}
	lame, err := db.AddNameserver(dnsdb.Nameserver{
		Addr: netx.MustParseAddr("203.0.113.99"), Provider: old, BaseRTT: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	parent := []dnsdb.NameserverID{child[0], child[1], lame}
	did := db.AddDomain(dnsdb.Domain{Name: "stale.example", NS: child, ParentNS: parent})
	db.Freeze()
	return db, did, lame
}

func TestLameDelegationBurnsATryButResolves(t *testing.T) {
	db, did, lame := delegationDB(t)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){}}
	cfg := DefaultConfig()
	cfg.MaxTries = 4
	r := New(cfg, db, tr)
	rng := rand.New(rand.NewPCG(1, 1))
	var lameFirst, resolved int
	for i := 0; i < 400; i++ {
		tr.calls = nil
		o := r.Resolve(rng, did, time.Now())
		if o.Status == nsset.StatusOK {
			resolved++
			if o.NS == lame {
				t.Fatal("resolution must never conclude at the lame server")
			}
		}
		if len(tr.calls) > 0 && tr.calls[0] == lame {
			lameFirst++
			// when the lame server was hit first, the resolver burned
			// its answer and retried: at least two tries
			if o.Tries < 2 && o.Status == nsset.StatusOK {
				t.Fatalf("lame-first resolution took %d tries", o.Tries)
			}
		}
	}
	if resolved != 400 {
		t.Errorf("resolved %d/400 — healthy child servers exist", resolved)
	}
	// the parent delegation lists the lame server among 3, so it should
	// be contacted first roughly a third of the time
	if lameFirst < 80 || lameFirst > 190 {
		t.Errorf("lame server contacted first %d/400 times, want ≈133", lameFirst)
	}
}

func TestDelegationDisabledUsesChildOnly(t *testing.T) {
	db, did, lame := delegationDB(t)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){}}
	cfg := DefaultConfig()
	cfg.FollowDelegation = false
	r := New(cfg, db, tr)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 200; i++ {
		tr.calls = nil
		r.Resolve(rng, did, time.Now())
		for _, id := range tr.calls {
			if id == lame {
				t.Fatal("child-only resolution must not contact the lame server")
			}
		}
	}
}

func TestChildServerMissingFromParentStillReached(t *testing.T) {
	// the parent omits child[2]; when the listed servers fail, the
	// resolver must still find the zone's own server
	db, did, _ := delegationDB(t)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: fail(nsset.StatusTimeout),
		1: fail(nsset.StatusTimeout),
		3: fail(nsset.StatusTimeout), // the lame one times out too
	}}
	cfg := DefaultConfig()
	cfg.MaxTries = 4
	r := New(cfg, db, tr)
	rng := rand.New(rand.NewPCG(3, 3))
	o := r.Resolve(rng, did, time.Now())
	if o.Status != nsset.StatusOK || o.NS != 2 {
		t.Errorf("outcome = %+v, want success via child-only server 2", o)
	}
}

func TestConsistentDomainUnaffected(t *testing.T) {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < 2; i++ {
		id, _ := db.AddNameserver(dnsdb.Nameserver{Addr: netx.Addr(0x0d000001 + i), Provider: pid, BaseRTT: time.Millisecond})
		ids = append(ids, id)
	}
	// ParentNS equal to NS collapses to consistent
	did := db.AddDomain(dnsdb.Domain{Name: "ok.example", NS: ids, ParentNS: []dnsdb.NameserverID{ids[1], ids[0]}})
	db.Freeze()
	if db.Domains[did].Inconsistent() {
		t.Fatal("identical parent set should collapse to consistent")
	}
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){}}
	r := New(DefaultConfig(), db, tr)
	if o := r.Resolve(rand.New(rand.NewPCG(4, 4)), did, time.Now()); o.Status != nsset.StatusOK || o.Tries != 1 {
		t.Errorf("outcome = %+v", o)
	}
}
