package resolver

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"dnsddos/internal/dnswire"
)

// UDPClient issues real DNS queries over UDP sockets, used by the live
// integration path (internal/authserver) and the livedns example. It
// retries nothing by itself; callers own retry policy.
type UDPClient struct {
	// Timeout bounds one query round trip.
	Timeout time.Duration
	// EDNSPayload, when nonzero, attaches an EDNS OPT record advertising
	// this UDP payload size (RFC 6891), letting servers skip truncation
	// for responses up to that size.
	EDNSPayload uint16
	// Wrap, when set, wraps the dialed socket before any traffic flows —
	// the fault-injection hook (e.g. faultinject.WrapDatagram).
	Wrap func(net.Conn) net.Conn
}

// Query sends a question to the server at addr ("host:port") and returns
// the decoded response and the measured round-trip time.
func (c *UDPClient) Query(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var d net.Dialer
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := d.DialContext(dctx, "udp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("resolver: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if c.Wrap != nil {
		conn = c.Wrap(conn)
	}

	var idb [2]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, 0, err
	}
	id := binary.BigEndian.Uint16(idb[:])
	q := dnswire.NewQuery(id, name, qtype)
	if c.EDNSPayload > 0 {
		q.AttachEDNS(dnswire.EDNS{UDPPayload: c.EDNSPayload})
	}
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, 0, err
	}
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := conn.Write(wire); err != nil {
		return nil, 0, fmt.Errorf("resolver: send: %w", err)
	}
	// The read buffer must cover what we invited the server to send:
	// a buffer smaller than the advertised EDNS payload makes the
	// kernel silently truncate big responses, which then fail to
	// decode (see udp_fallback_test.go).
	bufSize := 4096
	if int(c.EDNSPayload) > bufSize {
		bufSize = int(c.EDNSPayload)
	}
	buf := make([]byte, bufSize)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, 0, fmt.Errorf("resolver: recv: %w", err)
		}
		rtt := time.Since(start)
		m, err := dnswire.Decode(buf[:n])
		if err != nil {
			return nil, 0, err
		}
		if m.Header.ID != id || !m.Header.Response {
			continue // stray datagram; keep waiting until deadline
		}
		return m, rtt, nil
	}
}

// QueryWithTCPFallback queries over UDP and, when the server truncates the
// answer (TC bit — responses past the 512-byte classic limit, §6.2),
// retries the same question through tcp — any Client, normally a
// *TCPClient. The returned RTT covers the full exchange, as a stub
// resolver experiences it.
func (c *UDPClient) QueryWithTCPFallback(ctx context.Context, addr, name string, qtype dnswire.Type, tcp Client) (*dnswire.Message, time.Duration, error) {
	m, rtt, err := c.Query(ctx, addr, name, qtype)
	if err != nil {
		return nil, 0, err
	}
	if !m.Header.Truncated {
		return m, rtt, nil
	}
	start := time.Now()
	full, _, err := tcp.Query(ctx, addr, name, qtype)
	if err != nil {
		return nil, 0, fmt.Errorf("resolver: tcp fallback: %w", err)
	}
	return full, rtt + time.Since(start), nil
}
