package resolver

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// fakeTransport scripts per-nameserver outcomes.
type fakeTransport struct {
	outcomes map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration)
	calls    []dnsdb.NameserverID
}

func (f *fakeTransport) Query(_ *rand.Rand, id dnsdb.NameserverID, _ time.Time) (nsset.QueryStatus, time.Duration) {
	f.calls = append(f.calls, id)
	if fn, ok := f.outcomes[id]; ok {
		return fn()
	}
	return nsset.StatusOK, 10 * time.Millisecond
}

func ok(rtt time.Duration) func() (nsset.QueryStatus, time.Duration) {
	return func() (nsset.QueryStatus, time.Duration) { return nsset.StatusOK, rtt }
}

func fail(st nsset.QueryStatus) func() (nsset.QueryStatus, time.Duration) {
	return func() (nsset.QueryStatus, time.Duration) { return st, 0 }
}

func TestResolveSuccessFirstTry(t *testing.T) {
	db, did := testDBSimple(t, 3)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){}}
	r := New(DefaultConfig(), db, tr)
	o := r.Resolve(rand.New(rand.NewPCG(1, 1)), did, time.Now())
	if o.Status != nsset.StatusOK || o.Tries != 1 || o.RTT != 10*time.Millisecond {
		t.Errorf("outcome = %+v", o)
	}
}

// testDBSimple avoids the addr helper contortion above.
func testDBSimple(t *testing.T, numNS int) (*dnsdb.DB, dnsdb.DomainID) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < numNS; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0a000001 + i*256), Provider: pid, BaseRTT: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	did := db.AddDomain(dnsdb.Domain{Name: "x.example", NS: ids})
	db.Freeze()
	return db, did
}

func TestResolveRetriesOnTimeout(t *testing.T) {
	db, did := testDBSimple(t, 3)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: fail(nsset.StatusTimeout),
		1: fail(nsset.StatusTimeout),
		2: ok(8 * time.Millisecond),
	}}
	cfg := DefaultConfig()
	r := New(cfg, db, tr)
	// find a seed whose shuffle visits 0,1 before 2 — try several
	for seed := uint64(0); seed < 50; seed++ {
		tr.calls = nil
		o := r.Resolve(rand.New(rand.NewPCG(seed, 0)), did, time.Now())
		if len(tr.calls) == 3 {
			// two timeouts burned 2×PerTryTimeout before success
			want := 2*cfg.PerTryTimeout + 8*time.Millisecond
			if o.Status != nsset.StatusOK || o.RTT != want || o.Tries != 3 {
				t.Errorf("outcome = %+v, want RTT %v", o, want)
			}
			return
		}
	}
	t.Skip("no seed visited the two dead servers first")
}

func TestResolveAllTimeout(t *testing.T) {
	db, did := testDBSimple(t, 3)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: fail(nsset.StatusTimeout), 1: fail(nsset.StatusTimeout), 2: fail(nsset.StatusTimeout),
	}}
	r := New(DefaultConfig(), db, tr)
	o := r.Resolve(rand.New(rand.NewPCG(2, 2)), did, time.Now())
	if o.Status != nsset.StatusTimeout || o.Tries != 3 || o.RTT != 0 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestResolveServFailPrecedence(t *testing.T) {
	db, did := testDBSimple(t, 2)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: fail(nsset.StatusServFail), 1: fail(nsset.StatusTimeout),
	}}
	r := New(DefaultConfig(), db, tr)
	o := r.Resolve(rand.New(rand.NewPCG(3, 3)), did, time.Now())
	if o.Status != nsset.StatusServFail {
		t.Errorf("status = %v, want SERVFAIL when any server servfailed", o.Status)
	}
}

func TestResolveMaxTriesBound(t *testing.T) {
	db, did := testDBSimple(t, 5)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: fail(nsset.StatusTimeout), 1: fail(nsset.StatusTimeout), 2: fail(nsset.StatusTimeout),
		3: fail(nsset.StatusTimeout), 4: fail(nsset.StatusTimeout),
	}}
	cfg := DefaultConfig()
	cfg.MaxTries = 2
	r := New(cfg, db, tr)
	o := r.Resolve(rand.New(rand.NewPCG(4, 4)), did, time.Now())
	if o.Tries != 2 || len(tr.calls) != 2 {
		t.Errorf("tries = %d calls = %d, want 2", o.Tries, len(tr.calls))
	}
}

func TestResolveSlowAnswerIsTimeout(t *testing.T) {
	db, did := testDBSimple(t, 1)
	cfg := DefaultConfig()
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		0: ok(cfg.PerTryTimeout + time.Millisecond),
	}}
	r := New(cfg, db, tr)
	o := r.Resolve(rand.New(rand.NewPCG(5, 5)), did, time.Now())
	if o.Status != nsset.StatusTimeout {
		t.Errorf("an answer slower than the try timeout should count as timeout, got %v", o.Status)
	}
}

func TestResolveRandomizesNameserver(t *testing.T) {
	db, did := testDBSimple(t, 3)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){}}
	r := New(DefaultConfig(), db, tr)
	rng := rand.New(rand.NewPCG(6, 6))
	first := map[dnsdb.NameserverID]int{}
	for i := 0; i < 3000; i++ {
		tr.calls = nil
		r.Resolve(rng, did, time.Now())
		first[tr.calls[0]]++
	}
	for id, n := range first {
		if n < 800 || n > 1200 {
			t.Errorf("NS %d chosen first %d/3000 times; agnostic selection should be uniform", id, n)
		}
	}
}

func TestResolveNoNameservers(t *testing.T) {
	db := dnsdb.New()
	did := db.AddDomain(dnsdb.Domain{Name: "orphan.example"})
	db.Freeze()
	r := New(DefaultConfig(), db, &fakeTransport{})
	if o := r.Resolve(rand.New(rand.NewPCG(7, 7)), did, time.Now()); o.Status != nsset.StatusServFail {
		t.Errorf("orphan domain = %v", o.Status)
	}
}

func TestQueryNSExhaustive(t *testing.T) {
	db, _ := testDBSimple(t, 2)
	tr := &fakeTransport{outcomes: map[dnsdb.NameserverID]func() (nsset.QueryStatus, time.Duration){
		1: fail(nsset.StatusTimeout),
	}}
	r := New(DefaultConfig(), db, tr)
	rng := rand.New(rand.NewPCG(8, 8))
	if o := r.QueryNS(rng, 0, time.Now()); o.Status != nsset.StatusOK || o.NS != 0 {
		t.Errorf("QueryNS(0) = %+v", o)
	}
	if o := r.QueryNS(rng, 1, time.Now()); o.Status != nsset.StatusTimeout || o.Tries != 1 {
		t.Errorf("QueryNS(1) = %+v", o)
	}
}
