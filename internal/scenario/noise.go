package scenario

import (
	"math/rand/v2"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
	"dnsddos/internal/telescope"
)

// noise.go synthesizes the non-backscatter component of Internet Background
// Radiation the telescope also receives (§3.1: backscatter is "a
// significant component" of IBR, not all of it): scanners sweeping the
// darknet and misconfigured hosts retransmitting at single addresses. The
// Moore-et-al. thresholds in internal/rsdos — minimum packet counts and,
// critically, the /16-spread requirement — exist precisely to keep this
// traffic out of the attack feed; SynthesizeNoise lets tests and studies
// verify that they do.

// NoiseConfig sizes the IBR noise floor.
type NoiseConfig struct {
	Seed uint64
	// ScannersPerDay is how many scan sources sweep the darknet daily.
	// A scanner's packets have the scanner as source, so a naive
	// backscatter reading would see it as a "victim" — but its traffic
	// reaches the telescope from one host at a steady rate, spread over
	// destinations sequentially, and (crucially for TCP-SYN scans) is
	// not response traffic at all; we model the residue that survives
	// response-type classification: low-rate, low-spread sources.
	ScannersPerDay int
	// MisconfiguredPerDay is how many broken hosts retransmit into one
	// or two darknet addresses daily.
	MisconfiguredPerDay int
	// Days bounds the generated interval (0 = full study window).
	Days int
}

// DefaultNoiseConfig returns a noise floor proportionate to the default
// schedule sizes.
func DefaultNoiseConfig() NoiseConfig {
	return NoiseConfig{Seed: 555, ScannersPerDay: 40, MisconfiguredPerDay: 25}
}

// SynthesizeNoise produces the per-(source, window) observations the noise
// contributes, in the same WindowObs schema the inference consumes.
func SynthesizeNoise(cfg NoiseConfig, tel *telescope.Telescope) []rsdos.WindowObs {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x401))
	days := cfg.Days
	if days <= 0 {
		days = clock.StudyDays()
	}
	var out []rsdos.WindowObs
	for day := 0; day < days; day++ {
		base := clock.Day(day).FirstWindow()
		for i := 0; i < cfg.ScannersPerDay; i++ {
			out = append(out, scannerObs(rng, tel, base)...)
		}
		for i := 0; i < cfg.MisconfiguredPerDay; i++ {
			out = append(out, misconfObs(rng, base)...)
		}
	}
	return out
}

// scannerObs models one scan source: minutes to hours of steady low-rate
// packets whose darknet footprint grows sequentially — few /16s per
// 5-minute window even when the total packet count is large.
func scannerObs(rng *rand.Rand, tel *telescope.Telescope, base clock.Window) []rsdos.WindowObs {
	src := netx.Addr(rng.Uint32())
	start := base + clock.Window(rng.IntN(int(clock.WindowsPerDay)))
	windows := 1 + rng.IntN(24)
	perWindow := 20 + rng.IntN(400)
	proto := packet.ProtoTCP
	port := uint16(23) // telnet and friends dominate scan targets
	switch rng.IntN(4) {
	case 1:
		port = 445
	case 2:
		port = 22
	case 3:
		port = 3389
	}
	var out []rsdos.WindowObs
	for w := 0; w < windows; w++ {
		pk := int64(perWindow) + rng.Int64N(20)
		// sequential sweep: a window's packets stay inside 1–4 /16s
		spread := 1 + rng.IntN(4)
		if spread > tel.NumSlash16() {
			spread = tel.NumSlash16()
		}
		out = append(out, rsdos.WindowObs{
			Window:     start + clock.Window(w),
			Victim:     src,
			Packets:    pk,
			PeakPPM:    float64(pk) / 5 * (1 + rng.Float64()*0.2),
			Slash16:    spread,
			UniqueDsts: pk,
			Proto:      proto,
			Ports:      map[uint16]int64{port: pk},
		})
	}
	return out
}

// misconfObs models a broken host retransmitting to one or two fixed
// darknet addresses: plenty of packets, no spread at all.
func misconfObs(rng *rand.Rand, base clock.Window) []rsdos.WindowObs {
	src := netx.Addr(rng.Uint32())
	start := base + clock.Window(rng.IntN(int(clock.WindowsPerDay)))
	windows := 1 + rng.IntN(200)
	var out []rsdos.WindowObs
	for w := 0; w < windows; w++ {
		pk := 5 + stats.Poisson(rng, 40)
		out = append(out, rsdos.WindowObs{
			Window:     start + clock.Window(w),
			Victim:     src,
			Packets:    pk,
			PeakPPM:    float64(pk) / 5,
			Slash16:    1,
			UniqueDsts: 1 + rng.Int64N(2),
			Proto:      packet.ProtoUDP,
			Ports:      map[uint16]int64{uint16(1024 + rng.IntN(60000)): pk},
		})
	}
	return out
}
