package scenario

import (
	"fmt"
	"time"

	"dnsddos/internal/anycast"
	"dnsddos/internal/astopo"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/stats"
)

// world2.go holds the later world-generation phases: named providers,
// generic long-tail providers, domain assignment, the non-DNS victim
// space, and the anycast census.

func (b *worldBuilder) buildNamed() {
	for _, t := range namedProviders() {
		b.addProviderNS(t)
	}
	// open resolvers registered as "nameservers" of their operator so
	// that misconfigured domains can delegate to them
	for _, e := range openResolverEntries() {
		pid, ok := b.w.Named[e.provider]
		if !ok {
			panic("scenario: open resolver provider missing: " + e.provider)
		}
		addr := netx.MustParseAddr(e.addr)
		asn := b.db.Providers[pid].ASNs[0]
		b.announce(addr.Slash24(), asn)
		b.anycast24s = append(b.anycast24s, addr.Slash24())
		id, err := b.db.AddNameserver(dnsdb.Nameserver{
			Host:        "resolver-" + e.addr + ".invalid",
			Addr:        addr,
			Provider:    pid,
			Anycast:     true,
			Sites:       200,
			CapacityPPS: 5e8,
			BaseRTT:     b.baseRTT(6),
		})
		if err != nil {
			panic(err)
		}
		b.openResGroups = append(b.openResGroups, len(b.w.Groups))
		b.w.Groups = append(b.w.Groups, Group{Provider: pid, NS: []dnsdb.NameserverID{id}})
		b.w.AttackWeights[addr] = e.weight
	}
}

// genericCountries weights the long-tail provider geography.
var genericCountries = []string{"US", "DE", "NL", "FR", "GB", "RU", "PL", "ES", "IT", "SE", "CA", "JP", "BR", "AU", "TR"}

// genericBaseRTT maps country to a mean base RTT from the NL vantage.
func genericBaseRTT(country string) float64 {
	switch country {
	case "NL":
		return 5
	case "DE", "FR", "GB", "BE":
		return 13
	case "PL", "ES", "IT", "SE", "AT":
		return 25
	case "RU", "TR":
		return 55
	case "US", "CA":
		return 95
	default:
		return 130
	}
}

func (b *worldBuilder) buildGenerics() {
	for i := 0; i < b.cfg.GenericProviders; i++ {
		country := genericCountries[b.rng.IntN(len(genericCountries))]
		asn := astopo.ASN(60000 + i)
		// size class by rank: a handful of big generics, then a tail
		var capacity float64
		var anycastP float64
		switch {
		case i < 5:
			capacity = 4e6
			anycastP = 0.6
		case i < 25:
			capacity = 3e5
			anycastP = 0.3
		default:
			capacity = 1.5e4 + b.rng.Float64()*9e4
			anycastP = 0.12
		}
		weight := 0.25
		if capacity < 1.5e5 {
			// small hosters attract proportionally more of the DNS
			// attacks that actually do damage (§6.3)
			weight = 1.0
		}
		t := providerTemplate{
			name:         fmt.Sprintf("Provider-%03d %s", i, country),
			country:      country,
			asn:          asn,
			groups:       1,
			nsPerGroup:   2 + b.rng.IntN(3),
			capacityPPS:  capacity,
			baseRTTms:    genericBaseRTT(country),
			attackWeight: weight,
		}
		if b.rng.Float64() < anycastP {
			t.anycast = true
			t.sites = 4 + b.rng.IntN(28)
		} else if b.rng.Float64() < 0.15 {
			t.partialAnycast = true
			t.sites = 4 + b.rng.IntN(12)
		}
		// prefix diversity: many small unicast providers sit in one /24
		switch r := b.rng.Float64(); {
		case r < 0.45:
			t.prefixes24 = 1
		case r < 0.8:
			t.prefixes24 = 2
		default:
			t.prefixes24 = t.nsPerGroup
		}
		// multi-AS deployments are more common for larger providers
		// (§6.6.2: big NSSets are more likely multi-AS)
		multiASP := 0.12
		if i < 25 {
			multiASP = 0.5
		}
		if t.prefixes24 >= 2 && b.rng.Float64() < multiASP {
			t.secondASN = astopo.ASN(61000 + i)
		}
		b.addProviderNS(t)
	}
}

// buildDomains assigns registered domains to NS groups: named providers by
// share, generics by Zipf over the remainder, misconfigured domains to
// open resolvers.
func (b *worldBuilder) buildDomains() {
	n := b.cfg.Domains
	type slot struct {
		group  int
		weight float64
	}
	var slots []slot
	named := namedProviders()
	shareOf := make(map[dnsdb.ProviderID]float64)
	for _, t := range named {
		shareOf[b.w.Named[t.name]] = t.share
	}
	// count groups per provider to split shares
	groupsPer := make(map[dnsdb.ProviderID]int)
	for _, g := range b.w.Groups {
		groupsPer[g.Provider]++
	}
	var namedTotal float64
	openResGroups := b.openResGroups
	isOpenRes := make(map[int]bool, len(openResGroups))
	for _, gi := range openResGroups {
		isOpenRes[gi] = true
	}
	genericGroups := make([]int, 0, len(b.w.Groups))
	for gi, g := range b.w.Groups {
		if isOpenRes[gi] {
			continue
		}
		if share, ok := shareOf[g.Provider]; ok {
			w := share / float64(groupsPer[g.Provider])
			slots = append(slots, slot{group: gi, weight: w})
			namedTotal += w
			continue
		}
		genericGroups = append(genericGroups, gi)
	}
	// generic tail shares the remaining mass by Zipf rank
	remainder := 1 - namedTotal - b.cfg.MisconfiguredShare
	if remainder < 0.1 {
		remainder = 0.1
	}
	z := stats.NewZipf(len(genericGroups), 0.9)
	for rank, gi := range genericGroups {
		slots = append(slots, slot{group: gi, weight: remainder * z.Weight(rank)})
	}
	// cumulative selection
	var total float64
	for _, s := range slots {
		total += s.weight
	}
	// misconfigured mass routes to the open-resolver groups
	misconf := b.cfg.MisconfiguredShare
	cum := make([]float64, len(slots))
	acc := 0.0
	for i, s := range slots {
		acc += s.weight / (total + misconf)
		cum[i] = acc
	}

	// special-case domains for the §5.2 case studies
	b.addCaseStudyDomains()

	for i := len(b.db.Domains); i < n; i++ {
		u := b.rng.Float64()
		var gi int
		if u >= cum[len(cum)-1] && len(openResGroups) > 0 {
			gi = openResGroups[b.rng.IntN(len(openResGroups))]
		} else {
			gi = slots[searchCum(cum, u)].group
		}
		g := b.w.Groups[gi]
		p := b.db.Providers[g.Provider]
		tp := false
		for _, t := range named {
			if b.w.Named[t.name] == g.Provider && t.thirdPartyWeb > 0 {
				tp = b.rng.Float64() < t.thirdPartyWeb
			}
		}
		dom := dnsdb.Domain{
			Name:          fmt.Sprintf("d%06d.%s", i, tldFor(p.Country)),
			NS:            append([]dnsdb.NameserverID(nil), g.NS...),
			ThirdPartyWeb: tp,
		}
		// parent-child inconsistency: the registry still lists a stale
		// nameserver of a previous provider instead of one child server
		if b.rng.Float64() < b.cfg.InconsistentShare && len(dom.NS) > 1 && len(genericGroups) > 0 {
			other := b.w.Groups[genericGroups[b.rng.IntN(len(genericGroups))]]
			if other.Provider != g.Provider && len(other.NS) > 0 {
				parent := append([]dnsdb.NameserverID(nil), dom.NS...)
				parent[b.rng.IntN(len(parent))] = other.NS[b.rng.IntN(len(other.NS))]
				dom.ParentNS = parent
			}
		}
		b.db.AddDomain(dom)
	}
}

func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func tldFor(country string) string {
	switch country {
	case "NL":
		return "nl"
	case "RU":
		return "ru"
	case "DE":
		return "de"
	default:
		return "com"
	}
}

// addCaseStudyDomains registers the hand-scripted domains of §5.2.
func (b *worldBuilder) addCaseStudyDomains() {
	mil := b.w.Groups[b.groupOf("MilRu Hosting")]
	for _, name := range []string{"mil.ru", "xn--90anlfbebar6i.xn--p1ai", "recrut.mil.ru", "stat.mil.ru", "mult.mil.ru", "function.mil.ru"} {
		b.db.AddDomain(dnsdb.Domain{Name: name, NS: append([]dnsdb.NameserverID(nil), mil.NS...)})
	}
	rzd := b.w.Groups[b.groupOf("RZD Rail")]
	for _, name := range []string{"rzd.ru", "ticket.rzd.ru", "cargo.rzd.ru", "pass.rzd.ru", "eng.rzd.ru", "company.rzd.ru"} {
		b.db.AddDomain(dnsdb.Domain{Name: name, NS: append([]dnsdb.NameserverID(nil), rzd.NS...)})
	}
}

// groupOf returns the index of a named provider's first group.
func (b *worldBuilder) groupOf(name string) int {
	pid, ok := b.w.Named[name]
	if !ok {
		panic("scenario: unknown named provider " + name)
	}
	for gi, g := range b.w.Groups {
		if g.Provider == pid {
			return gi
		}
	}
	panic("scenario: provider has no groups: " + name)
}

// buildOtherSpace announces filler ASNs over the non-DNS victim space so
// Table 1's AS counting has realistic diversity.
func (b *worldBuilder) buildOtherSpace() {
	// 120.0.0.0/6 = 4096 /18s; announce each /18 from its own filler AS
	base := b.w.OtherSpace
	count := int(base.Size() >> 14) // number of /18s
	for i := 0; i < count; i++ {
		p := netx.Prefix{Addr: base.Addr + netx.Addr(i)<<14, Bits: 18}
		asn := astopo.ASN(100000 + i)
		b.announce(p, asn)
		if i%64 == 0 {
			b.setOrg(asn, fmt.Sprintf("Transit-%04d", i), "US")
		}
	}
}

// buildCensus takes quarterly census snapshots with the configured recall.
func (b *worldBuilder) buildCensus() {
	quarters := []time.Time{
		time.Date(2021, 1, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2021, 4, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2021, 7, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2021, 10, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2022, 1, 15, 0, 0, 0, 0, time.UTC),
	}
	snaps := make([]*anycast.Snapshot, 0, len(quarters))
	for _, q := range quarters {
		var detected []netx.Prefix
		for _, p := range b.anycast24s {
			if b.rng.Float64() < b.cfg.AnycastRecall {
				detected = append(detected, p)
			}
		}
		snaps = append(snaps, anycast.NewSnapshot(q, detected))
	}
	b.w.Census = anycast.NewCensus(snaps...)
}

func (b *worldBuilder) finish() {
	b.db.Freeze()
	b.w.Topo = b.topo.Build()
	b.w.Entries = b.entries
}
