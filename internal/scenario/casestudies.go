package scenario

import (
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/simnet"
)

// casestudies.go scripts the §5 attacks with the timings and intensities
// the paper reports.

// caseStudySpecs builds the scripted attack components and the associated
// geofencing blackouts.
func caseStudySpecs(w *World) (CaseStudies, []attacksim.Spec, []simnet.Blackout) {
	var cs CaseStudies
	var specs []attacksim.Spec
	var blackouts []simnet.Blackout

	transip := groupNS(w, "TransIP")
	if len(transip) >= 3 {
		copy(cs.TransIPNS[:], addrsOf(w, transip)[:3])
	}

	// --- TransIP December 2020 (§5.1, Table 2) -----------------------
	// RSDoS activity 2020-11-30 22:00 → 2020-12-01 12:30 UTC. Inferred
	// victim-side rates: A ≈ 124 kpps (21.8 kppm at the telescope),
	// B ≈ 21.6 kpps, C ≈ 16.5 kpps; ~1400-byte packets give the
	// 1.4 Gbps / 247 Mbps / 188 Mbps volumes.
	cs.TransIPDecStart = time.Date(2020, 11, 30, 22, 0, 0, 0, time.UTC)
	cs.TransIPDecEnd = time.Date(2020, 12, 1, 12, 30, 0, 0, time.UTC)
	decRates := []float64{124000, 21600, 16500}
	decPools := []int{5_790_000, 1_570_000, 1_330_000}
	for i, ns := range transip[:min3(len(transip))] {
		specs = append(specs, attacksim.Spec{
			GroupID:        -1,
			Target:         w.DB.Nameservers[ns].Addr,
			Vector:         attacksim.VectorRandomSpoofed,
			Proto:          packet.ProtoTCP,
			Ports:          []uint16{53},
			Start:          cs.TransIPDecStart,
			End:            cs.TransIPDecEnd,
			PPS:            decRates[i],
			PacketBytes:    1400,
			SpoofedSources: decPools[i],
		})
	}

	// --- TransIP March 2021 (§5.1, Table 2) --------------------------
	// Telescope peak ≈ 6× December: A ≈ 710 kpps, B ≈ 700 kpps,
	// C ≈ 74 kpps, plus telescope-invisible components that saturate
	// all three nameservers despite the scrubbing TransIP had deployed
	// by then — producing the ≈20% timeout plateau of Fig. 3 while the
	// visible impairment window matches the telescope window.
	cs.TransIPMarStart = time.Date(2021, 3, 2, 13, 0, 0, 0, time.UTC)
	cs.TransIPMarEnd = time.Date(2021, 3, 2, 19, 0, 0, 0, time.UTC)
	marRates := []float64{710000, 700000, 74000}
	marPools := []int{7_000_000, 6_190_000, 823_000}
	for i, ns := range transip[:min3(len(transip))] {
		addr := w.DB.Nameservers[ns].Addr
		specs = append(specs,
			attacksim.Spec{
				GroupID:        -2,
				Target:         addr,
				Vector:         attacksim.VectorRandomSpoofed,
				Proto:          packet.ProtoTCP,
				Ports:          []uint16{53},
				Start:          cs.TransIPMarStart,
				End:            cs.TransIPMarEnd,
				PPS:            marRates[i],
				PacketBytes:    1400,
				SpoofedSources: marPools[i],
			},
			attacksim.Spec{
				GroupID:     -2,
				Target:      addr,
				Vector:      attacksim.VectorDirect,
				Proto:       packet.ProtoTCP,
				Ports:       []uint16{53},
				Start:       cs.TransIPMarStart,
				End:         cs.TransIPMarEnd,
				PPS:         1.8e6,
				PacketBytes: 800,
			},
		)
	}

	// --- mil.ru, March 11–18 2022 (§5.2.1) ---------------------------
	// Modest telescope-visible intensity, devastating overall effect;
	// the government geofenced the network from March 12 (blackout from
	// outside vantage points).
	milNS := groupNS(w, "MilRu Hosting")
	cs.MilRuNS = addrsOf(w, milNS)
	cs.MilRuStart = time.Date(2022, 3, 11, 9, 0, 0, 0, time.UTC)
	cs.MilRuEnd = time.Date(2022, 3, 18, 21, 0, 0, 0, time.UTC)
	for _, ns := range milNS {
		addr := w.DB.Nameservers[ns].Addr
		specs = append(specs,
			attacksim.Spec{
				GroupID:     -3,
				Target:      addr,
				Vector:      attacksim.VectorRandomSpoofed,
				Proto:       packet.ProtoTCP,
				Ports:       []uint16{53},
				Start:       cs.MilRuStart,
				End:         cs.MilRuEnd,
				PPS:         20000,
				PacketBytes: 60,
			},
			attacksim.Spec{
				GroupID:     -3,
				Target:      addr,
				Vector:      attacksim.VectorDirect,
				Proto:       packet.ProtoTCP,
				Ports:       []uint16{53, 80, 443},
				Start:       cs.MilRuStart,
				End:         cs.MilRuEnd,
				PPS:         2e6,
				PacketBytes: 300,
			},
		)
	}
	if len(cs.MilRuNS) > 0 {
		// the web site shares the nameservers' /24 (§5.2.3); attack it
		// too so the shared-upstream coupling is exercised
		webAddr := cs.MilRuNS[0].Slash24().Nth(250)
		specs = append(specs, attacksim.Spec{
			GroupID:     -3,
			Target:      webAddr,
			Vector:      attacksim.VectorRandomSpoofed,
			Proto:       packet.ProtoTCP,
			Ports:       []uint16{80, 443},
			Start:       cs.MilRuStart,
			End:         cs.MilRuEnd,
			PPS:         50000,
			PacketBytes: 60,
		})
		blackouts = append(blackouts, simnet.Blackout{
			Prefix: cs.MilRuNS[0].Slash24(),
			From:   time.Date(2022, 3, 12, 0, 0, 0, 0, time.UTC),
			To:     time.Date(2022, 3, 17, 0, 0, 0, 0, time.UTC),
		})
	}

	// --- RDZ railways, March 8 2022 (§5.2.2) -------------------------
	// RSDoS activity 15:30–20:45; the IT-ARMY Telegram channel posted
	// the three nameserver IPs at 15:43 asking for a port-53/UDP flood.
	rzdNS := groupNS(w, "RZD Rail")
	cs.RZDNS = addrsOf(w, rzdNS)
	cs.RZDStart = time.Date(2022, 3, 8, 15, 30, 0, 0, time.UTC)
	cs.RZDEnd = time.Date(2022, 3, 8, 20, 45, 0, 0, time.UTC)
	cs.RZDTelegram = cs.RZDStart.Add(12 * time.Minute)
	for _, ns := range rzdNS {
		addr := w.DB.Nameservers[ns].Addr
		specs = append(specs,
			attacksim.Spec{
				GroupID:     -4,
				Target:      addr,
				Vector:      attacksim.VectorRandomSpoofed,
				Proto:       packet.ProtoUDP,
				Ports:       []uint16{53},
				Start:       cs.RZDStart,
				End:         cs.RZDEnd,
				PPS:         50000,
				PacketBytes: 400,
			},
			attacksim.Spec{
				GroupID:     -4,
				Target:      addr,
				Vector:      attacksim.VectorDirect,
				Proto:       packet.ProtoUDP,
				Ports:       []uint16{53},
				Start:       cs.RZDTelegram,
				End:         cs.RZDEnd,
				PPS:         5e5,
				PacketBytes: 400,
			},
		)
	}

	return cs, specs, blackouts
}

func min3(n int) int {
	if n > 3 {
		return 3
	}
	return n
}

// groupNS returns the nameserver IDs of a named provider's first group.
func groupNS(w *World, name string) []dnsdb.NameserverID {
	pid, ok := w.Named[name]
	if !ok {
		return nil
	}
	for _, g := range w.Groups {
		if g.Provider == pid {
			return g.NS
		}
	}
	return nil
}

func addrsOf(w *World, ns []dnsdb.NameserverID) []netx.Addr {
	out := make([]netx.Addr, len(ns))
	for i, id := range ns {
		out[i] = w.DB.Nameservers[id].Addr
	}
	return out
}
