package scenario

import (
	"math"
	"math/rand/v2"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
	"dnsddos/internal/telescope"
)

// synth.go converts an attack schedule into the telescope's window
// observations at flow level: the exact thinning of the backscatter process
// (Binomial/Poisson sampling of victim responses into the darknet),
// without materializing individual packets. Packet-level fidelity for the
// same process lives in attacksim.Flood + backscatter + telescope.Capture
// and is cross-validated against this path by tests.

// SynthConfig tunes the synthesizer.
type SynthConfig struct {
	Seed uint64
	// DefaultVictimCapacity is the response capacity assumed for
	// non-nameserver victims (nameservers use their dnsdb capacity).
	// Saturated victims answer only capacity/load of attack packets —
	// the §6.5 self-suppression of strong attacks' backscatter.
	DefaultVictimCapacity float64
	// NSRespCapacityFactor scales a nameserver's serving capacity into
	// its raw response capacity: emitting a SYN-ACK or RST is much
	// cheaper than resolving a query, so backscatter keeps flowing well
	// past the point where resolution quality degrades.
	NSRespCapacityFactor float64
}

// DefaultSynthConfig returns standard settings.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Seed: 99, DefaultVictimCapacity: 2e5, NSRespCapacityFactor: 20}
}

// SynthesizeObs generates the telescope's per-(victim, window) backscatter
// observations for every randomly spoofed attack in the schedule.
func SynthesizeObs(cfg SynthConfig, w *World, sched *attacksim.Schedule, tel *telescope.Telescope) []rsdos.WindowObs {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x0b5))
	var out []rsdos.WindowObs
	// index components by victim so per-window total load is O(components
	// on that victim), not O(schedule)
	byTarget := make(map[netx.Addr][]attacksim.Spec)
	for _, s := range sched.Specs() {
		byTarget[s.Target] = append(byTarget[s.Target], s)
	}
	victimLoad := func(target netx.Addr, w clock.Window) float64 {
		var sum float64
		for _, s := range byTarget[target] {
			sum += s.WindowLoad(w)
		}
		return sum
	}
	for _, s := range sched.Specs() {
		if s.Vector != attacksim.VectorRandomSpoofed {
			continue
		}
		cap := cfg.DefaultVictimCapacity
		if ns, ok := w.DB.NameserverByAddr(s.Target); ok {
			cap = ns.CapacityPPS * float64(ns.Sites) * cfg.NSRespCapacityFactor
		} else {
			// non-NS victims get a deterministic per-host capacity
			cap = victimCapacity(s.Target, cfg.DefaultVictimCapacity)
		}
		startW := clock.WindowOf(s.Start)
		endW := clock.WindowOf(s.End.Add(-1))
		for wdw := startW; wdw <= endW; wdw++ {
			load := s.WindowLoad(wdw)
			if load <= 0 {
				continue
			}
			total := victimLoad(s.Target, wdw)
			respRate := 1.0
			if total > cap {
				respRate = cap / total
			}
			responses := load * respRate * clock.WindowDur.Seconds()
			lambda := responses * tel.Fraction()
			o := synthesizeWindow(rng, tel, s, wdw, lambda)
			if o.Packets > 0 {
				out = append(out, o)
			}
		}
	}
	return out
}

// synthesizeWindow draws one observation from the thinned backscatter
// process with expected telescope packet count lambda.
func synthesizeWindow(rng *rand.Rand, tel *telescope.Telescope, s attacksim.Spec, w clock.Window, lambda float64) rsdos.WindowObs {
	pk := stats.Poisson(rng, lambda)
	o := rsdos.WindowObs{
		Window:  w,
		Victim:  s.Target,
		Packets: pk,
		Proto:   s.Proto,
	}
	if pk == 0 {
		return o
	}
	// split the window's packets over its five minutes (multinomial via
	// sequential binomial splits) and take the peak
	remaining := pk
	var peak int64
	for i := 0; i < 5; i++ {
		share := 1.0 / float64(5-i)
		var c int64
		if i == 4 {
			c = remaining
		} else {
			c = stats.Binomial(rng, remaining, share)
		}
		remaining -= c
		if c > peak {
			peak = c
		}
	}
	o.PeakPPM = float64(peak)
	// /16 spread: expected coupon-collector coverage with ±1 noise
	spread := tel.ExpectedSlash16Spread(pk)
	if spread > 1 && rng.Float64() < 0.5 {
		spread += rng.IntN(3) - 1
	}
	if spread < 1 {
		spread = 1
	}
	if spread > tel.NumSlash16() {
		spread = tel.NumSlash16()
	}
	o.Slash16 = spread
	// distinct darknet destinations (birthday-corrected). An attacker
	// cycling a bounded spoofed-source pool saturates at the pool's
	// darknet share — the Table 2 "attacker IP count" signal.
	pool := float64(uint64(1) << 32)
	if s.SpoofedSources > 0 {
		pool = float64(s.SpoofedSources)
	}
	darknet := pool * tel.Fraction()
	o.UniqueDsts = int64(darknet * (1 - math.Exp(float64(pk)*math.Log1p(-1/darknet))))
	if o.UniqueDsts > pk {
		o.UniqueDsts = pk
	}
	if o.UniqueDsts == 0 {
		o.UniqueDsts = 1
	}
	// attacked-port attribution
	if len(s.Ports) > 0 {
		o.Ports = make(map[uint16]int64, len(s.Ports))
		rem := pk
		for i, p := range s.Ports {
			var c int64
			if i == len(s.Ports)-1 {
				c = rem
			} else {
				c = stats.Binomial(rng, rem, 1.0/float64(len(s.Ports)-i))
			}
			rem -= c
			if c > 0 {
				o.Ports[p] += c
			}
		}
	}
	return o
}

// victimCapacity derives a deterministic pseudo-random capacity for a
// non-nameserver victim from its address.
func victimCapacity(a netx.Addr, base float64) float64 {
	h := uint32(a) * 2654435761
	// spread capacities over roughly one order of magnitude around base
	f := 0.3 + float64(h%1000)/1000*3.0
	return base * f
}
