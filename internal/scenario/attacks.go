package scenario

import (
	"math"
	"math/rand/v2"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/simnet"
)

// AttackConfig sizes the 17-month synthetic attack schedule.
type AttackConfig struct {
	Seed uint64
	// TotalAttacks is the number of randomly spoofed (telescope-visible)
	// attacks over the study window. The real feed has ~4×10⁶; shapes
	// hold at 10⁴–10⁵.
	TotalAttacks int
	// DNSShare is the probability an attack targets an NS-recorded IP
	// (the paper observes 0.57–2.12% monthly, ~1.2% overall).
	DNSShare float64
	// Slash24Share is the probability an attack targets a non-NS host
	// inside a nameserver /24.
	Slash24Share float64
	// MultiVectorShare is the probability a DNS attack carries an extra
	// telescope-invisible component (reflection/direct).
	MultiVectorShare float64
	// ReflectionOnlyRatio adds standalone reflection attacks (invisible
	// to the telescope, visible to AmpPot honeypots) as a fraction of
	// TotalAttacks. Jonker et al. observed ≈60% spoofed / 40% reflected,
	// i.e. a ratio of ≈0.67.
	ReflectionOnlyRatio float64
	// IncludeCaseStudies adds the scripted §5 attacks.
	IncludeCaseStudies bool
}

// DefaultAttackConfig returns the standard longitudinal schedule sizing.
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{
		Seed:                7,
		TotalAttacks:        60000,
		DNSShare:            0.013,
		Slash24Share:        0.002,
		MultiVectorShare:    0.55,
		ReflectionOnlyRatio: 0.67,
		IncludeCaseStudies:  true,
	}
}

// monthWeights are the relative monthly attack volumes of Table 3, used to
// shape the synthetic schedule's seasonality.
var monthWeights = []float64{
	159434, 359918, // 2020-11, 2020-12
	174016, 144822, 279797, 165883, 199513, 230118, 338193, 292842, 245290, 228092, 284569, 221054, // 2021
	235027, 239775, 241142, // 2022-01..03
}

// Schedule is the generated schedule plus its case-study annotations.
type Schedule struct {
	Sched *attacksim.Schedule
	// Blackouts carries geofencing events for the data plane.
	Blackouts []simnet.Blackout
	// CaseStudies annotates the scripted attacks.
	CaseStudies CaseStudies
}

// CaseStudies exposes the scripted §5 timelines for examples and benches.
type CaseStudies struct {
	TransIPDecStart, TransIPDecEnd time.Time
	TransIPMarStart, TransIPMarEnd time.Time
	TransIPNS                      [3]netx.Addr
	MilRuStart, MilRuEnd           time.Time
	MilRuNS                        []netx.Addr
	RZDStart, RZDEnd               time.Time
	RZDNS                          []netx.Addr
	// RZDTelegram is when the IT-ARMY channel posted the RDZ nameserver
	// IPs — 12 minutes after the RSDoS-inferred start (Fig. 4).
	RZDTelegram time.Time
}

// GenerateSchedule builds the full 17-month schedule for a world.
func GenerateSchedule(cfg AttackConfig, w *World) *Schedule {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xa77ac))
	g := &schedGen{cfg: cfg, w: w, rng: rng}
	g.buildVictimPools()
	var specs []attacksim.Spec
	months := clock.StudyMonths()
	var wsum float64
	for _, mw := range monthWeights {
		wsum += mw
	}
	for mi, m := range months {
		n := int(float64(cfg.TotalAttacks) * monthWeights[mi%len(monthWeights)] / wsum)
		for i := 0; i < n; i++ {
			specs = append(specs, g.randomAttack(m)...)
		}
		nr := int(float64(n) * cfg.ReflectionOnlyRatio)
		for i := 0; i < nr; i++ {
			specs = append(specs, g.reflectionOnlyAttack(m))
		}
	}
	out := &Schedule{}
	if cfg.IncludeCaseStudies {
		cs, csSpecs, blackouts := caseStudySpecs(w)
		out.CaseStudies = cs
		specs = append(specs, csSpecs...)
		out.Blackouts = blackouts
		// §6.1: a surge of attacks against Russian providers in March
		// 2022 (Beeline hosting banking sites, and others)
		specs = append(specs, g.russianSurge()...)
	}
	out.Sched = attacksim.NewSchedule(specs)
	return out
}

type schedGen struct {
	cfg AttackConfig
	w   *World
	rng *rand.Rand

	dnsAddrs   []netx.Addr
	dnsWeights []float64 // cumulative
	ns24s      []netx.Prefix
	groupID    int
}

func (g *schedGen) buildVictimPools() {
	seen := make(map[netx.Prefix]struct{})
	var cum float64
	for addr := range g.w.DB.AllNSAddrs() {
		g.dnsAddrs = append(g.dnsAddrs, addr)
	}
	// deterministic order before weighting
	sortAddrs(g.dnsAddrs)
	for _, addr := range g.dnsAddrs {
		weight := g.w.AttackWeights[addr]
		if weight <= 0 {
			weight = 0.05
		}
		cum += weight
		g.dnsWeights = append(g.dnsWeights, cum)
		p24 := addr.Slash24()
		if _, ok := seen[p24]; !ok {
			seen[p24] = struct{}{}
			g.ns24s = append(g.ns24s, p24)
		}
	}
}

func sortAddrs(a []netx.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// pickDNSVictim draws an NS-recorded address by attack weight.
func (g *schedGen) pickDNSVictim() netx.Addr {
	u := g.rng.Float64() * g.dnsWeights[len(g.dnsWeights)-1]
	lo, hi := 0, len(g.dnsWeights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.dnsWeights[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.dnsAddrs[lo]
}

// randomAttack produces one attack (possibly multi-component).
func (g *schedGen) randomAttack(m clock.Month) []attacksim.Spec {
	g.groupID++
	start := g.startIn(m)
	dur := g.duration()
	pps := g.intensity()
	proto, ports := g.protoPorts()
	var victim netx.Addr
	isDNS := false
	switch u := g.rng.Float64(); {
	case u < g.cfg.DNSShare:
		victim = g.pickDNSVictim()
		isDNS = true
		// the very largest floods go after high-profile, heavily
		// provisioned targets (the Table 4/5 pattern: mega providers
		// absorb huge attacks with negligible effect) — which is also
		// why telescope intensity fails to predict impact (§6.4)
		if pps > 2.5e5 {
			for try := 0; try < 4; try++ {
				if ns, ok := g.w.DB.NameserverByAddr(victim); ok && ns.CapacityPPS >= 1e6 {
					break
				}
				victim = g.pickDNSVictim()
			}
		}
	case u < g.cfg.DNSShare+g.cfg.Slash24Share && len(g.ns24s) > 0:
		// a non-NS host in a nameserver /24
		p := g.ns24s[g.rng.IntN(len(g.ns24s))]
		victim = p.Nth(uint64(1 + g.rng.IntN(8)))
		if _, isNS := g.w.DB.NameserverByAddr(victim); isNS {
			victim = p.Nth(250)
		}
	default:
		victim = g.w.OtherSpace.RandomAddr(g.rng)
	}
	bytes := 60
	if proto == packet.ProtoUDP {
		bytes = 120 + g.rng.IntN(400)
	}
	specs := []attacksim.Spec{{
		GroupID:     g.groupID,
		Target:      victim,
		Vector:      attacksim.VectorRandomSpoofed,
		Proto:       proto,
		Ports:       ports,
		Start:       start,
		End:         start.Add(dur),
		PPS:         pps,
		PacketBytes: bytes,
	}}
	if isDNS && g.rng.Float64() < g.cfg.MultiVectorShare {
		// an invisible component whose magnitude is drawn
		// independently of the visible one — the §6.4 reason telescope
		// intensity and impact decorrelate
		specs = append(specs, attacksim.Spec{
			GroupID:     g.groupID,
			Target:      victim,
			Vector:      attacksim.VectorReflection,
			Proto:       packet.ProtoUDP,
			Ports:       []uint16{53},
			Start:       start,
			End:         start.Add(dur),
			PPS:         2 * g.intensity() * math.Exp(g.rng.NormFloat64()*0.8),
			PacketBytes: 512,
		})
	}
	return specs
}

// russianSurge generates the March-2022 wave of attacks on Russian
// infrastructure the paper documents (§6.1: "several attacks against a
// Russian DNS provider, Beeline, during March 2022").
func (g *schedGen) russianSurge() []attacksim.Spec {
	var out []attacksim.Spec
	targets := g.russianNS()
	if len(targets) == 0 {
		return nil
	}
	march := clock.Month{Year: 2022, Month: time.March}
	n := 8 + g.rng.IntN(8)
	for i := 0; i < n; i++ {
		g.groupID++
		start := g.startIn(march)
		out = append(out, attacksim.Spec{
			GroupID:     g.groupID,
			Target:      targets[g.rng.IntN(len(targets))],
			Vector:      attacksim.VectorRandomSpoofed,
			Proto:       packet.ProtoTCP,
			Ports:       []uint16{53},
			Start:       start,
			End:         start.Add(g.duration()),
			PPS:         g.intensity(),
			PacketBytes: 60,
		})
	}
	return out
}

// russianNS lists the nameserver addresses of RU-country providers.
func (g *schedGen) russianNS() []netx.Addr {
	var out []netx.Addr
	for _, ns := range g.w.DB.Nameservers {
		if g.w.DB.Providers[ns.Provider].Country == "RU" {
			out = append(out, ns.Addr)
		}
	}
	sortAddrs(out)
	return out
}

// reflectionOnlyAttack produces a pure amplification attack: no spoofed
// component, so the telescope never sees it — only AmpPot-style honeypots
// do (§2.1).
func (g *schedGen) reflectionOnlyAttack(m clock.Month) attacksim.Spec {
	g.groupID++
	start := g.startIn(m)
	victim := g.w.OtherSpace.RandomAddr(g.rng)
	if g.rng.Float64() < g.cfg.DNSShare {
		victim = g.pickDNSVictim()
	}
	return attacksim.Spec{
		GroupID:     g.groupID,
		Target:      victim,
		Vector:      attacksim.VectorReflection,
		Proto:       packet.ProtoUDP,
		Ports:       []uint16{53},
		Start:       start,
		End:         start.Add(g.duration()),
		PPS:         g.intensity(),
		PacketBytes: 512,
	}
}

func (g *schedGen) startIn(m clock.Month) time.Time {
	from := m.Start()
	span := m.Next().Start().Sub(from)
	return from.Add(time.Duration(g.rng.Int64N(int64(span)))).Truncate(time.Minute)
}

// duration draws the §6.5 bimodal attack duration: modes at ~15 min and
// ~1 h, plus a long tail.
func (g *schedGen) duration() time.Duration {
	switch u := g.rng.Float64(); {
	case u < 0.45:
		d := 5 + g.rng.ExpFloat64()*10
		if d > 45 {
			d = 45
		}
		return time.Duration(d * float64(time.Minute))
	case u < 0.80:
		d := 60 + g.rng.NormFloat64()*9
		if d < 30 {
			d = 30
		}
		return time.Duration(d * float64(time.Minute))
	case u < 0.97:
		return time.Duration((2 + g.rng.Float64()*4) * float64(time.Hour))
	default:
		return time.Duration((6 + g.rng.Float64()*14) * float64(time.Hour))
	}
}

// intensity draws the victim-side packet rate. The resulting telescope PPM
// distribution is bimodal around ≈50 and ≈6000 ppm (§6.4): 50 ppm at the
// telescope ≈ 284 pps victim-side, 6000 ppm ≈ 34 kpps.
func (g *schedGen) intensity() float64 {
	switch u := g.rng.Float64(); {
	case u < 0.50:
		return 284 * math.Exp(g.rng.NormFloat64()*0.35)
	case u < 0.91:
		return 34000 * math.Exp(g.rng.NormFloat64()*0.40)
	default:
		return 3e5 * math.Exp(g.rng.NormFloat64()*1.3)
	}
}

// protoPorts draws the Figure 6 protocol/port mix.
func (g *schedGen) protoPorts() (packet.Protocol, []uint16) {
	single := g.rng.Float64() < 0.807
	proto := packet.ProtoTCP
	switch u := g.rng.Float64(); {
	case u < 0.904:
		proto = packet.ProtoTCP
	case u < 0.988:
		proto = packet.ProtoUDP
	default:
		proto = packet.ProtoICMP
	}
	if proto == packet.ProtoICMP {
		return proto, nil
	}
	port := func() uint16 {
		if proto == packet.ProtoTCP {
			switch u := g.rng.Float64(); {
			case u < 0.37:
				return 80
			case u < 0.67:
				return 53
			case u < 0.82:
				return 443
			default:
				return uint16(1 + g.rng.IntN(65000))
			}
		}
		// UDP
		if g.rng.Float64() < 1.0/3 {
			return 53
		}
		return uint16(1 + g.rng.IntN(65000))
	}
	if single {
		return proto, []uint16{port()}
	}
	n := 2 + g.rng.IntN(6)
	ports := make([]uint16, 0, n)
	seen := make(map[uint16]bool)
	for len(ports) < n {
		p := port()
		if !seen[p] {
			seen[p] = true
			ports = append(ports, p)
		}
	}
	return proto, ports
}
