// Package scenario generates the synthetic study inputs: the DNS world
// (providers, nameservers, registered domains, routing and anycast
// metadata) and the 17-month attack schedule, including the scripted case
// studies of §5 (TransIP, mil.ru, RDZ railways).
//
// Everything is driven by explicit seeds; the same configuration always
// produces the same world and schedule.
package scenario

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dnsddos/internal/anycast"
	"dnsddos/internal/astopo"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/openres"
	"dnsddos/internal/stats"
)

// WorldConfig sizes the synthetic DNS ecosystem.
type WorldConfig struct {
	Seed uint64
	// Domains is the registered-domain count (the real namespace is
	// ~2×10⁸; shapes are preserved at 10⁴–10⁵).
	Domains int
	// GenericProviders is the number of long-tail providers beyond the
	// named case-study ones.
	GenericProviders int
	// MisconfiguredShare is the fraction of domains whose NS records
	// point at public open resolvers (the Table 5 artefact).
	MisconfiguredShare float64
	// AnycastRecall is the census detection probability per anycast /24
	// (the census is a lower bound, §3.3).
	AnycastRecall float64
	// InconsistentShare is the fraction of domains whose parent-side
	// delegation disagrees with the zone's own NS set (§3.2's reason
	// for explicit NS queries; Sommese et al. PAM 2020). A stale parent
	// record typically points at a previous provider's server, which is
	// lame for the zone.
	InconsistentShare float64
}

// DefaultWorldConfig returns the standard longitudinal world.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Seed:               1,
		Domains:            30000,
		GenericProviders:   150,
		MisconfiguredShare: 0.003,
		AnycastRecall:      0.9,
		InconsistentShare:  0.04,
	}
}

// Group is one NSSet-forming nameserver group of a provider.
type Group struct {
	Provider dnsdb.ProviderID
	NS       []dnsdb.NameserverID
}

// World is the generated ecosystem plus all ancillary metadata.
type World struct {
	Config  WorldConfig
	DB      *dnsdb.DB
	Topo    *astopo.Table
	Entries []astopo.Entry
	Orgs    map[astopo.ASN]astopo.Org
	Census  *anycast.Census
	OpenRes *openres.List
	// Groups are the NS groups; each generates one NSSet.
	Groups []Group
	// Named maps case-study provider names to IDs.
	Named map[string]dnsdb.ProviderID
	// AttackWeights biases DNS-attack victim selection per NS address
	// (open resolvers and shared-hosting IPs attract many attacks).
	AttackWeights map[netx.Addr]float64
	// OtherSpace is where non-DNS attack victims live.
	OtherSpace netx.Prefix
}

// providerTemplate scripts one named provider.
type providerTemplate struct {
	name    string
	country string
	asn     astopo.ASN
	// share is the fraction of domains hosted.
	share float64
	// groups × nsPerGroup nameservers; prefixes24 is how many distinct
	// /24s the NSs of one group spread over.
	groups, nsPerGroup, prefixes24 int
	anycast                        bool
	partialAnycast                 bool
	sites                          int
	capacityPPS                    float64
	baseRTTms                      float64
	scrubbingSince                 time.Time
	attackWeight                   float64 // per NS address
	thirdPartyWeb                  float64
	// secondASN, when nonzero, announces the second half of each
	// group's /24 pool from a different AS — a multi-AS deployment
	// (§6.6.2). Requires prefixes24 >= 2 to have any effect.
	secondASN astopo.ASN
}

// namedProviders mirrors the organizations the paper names, with shapes
// (deployment style, relative size, capacity class) chosen to reproduce
// the evaluation's rankings. Shares are fractions of the domain count.
func namedProviders() []providerTemplate {
	feb2021 := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	return []providerTemplate{
		// mega anycast DNS/cloud providers (Table 4 top, Fig. 5 peaks)
		{name: "Cloudflare", country: "US", asn: 13335, share: 0.13, groups: 4, nsPerGroup: 4, prefixes24: 4, anycast: true, sites: 80, capacityPPS: 5e7, baseRTTms: 5, attackWeight: 14},
		{name: "GoDaddy", country: "US", asn: 26496, share: 0.10, groups: 4, nsPerGroup: 4, prefixes24: 3, anycast: true, sites: 30, capacityPPS: 8e6, baseRTTms: 18, attackWeight: 5},
		{name: "Google", country: "US", asn: 15169, share: 0.05, groups: 2, nsPerGroup: 4, prefixes24: 4, anycast: true, sites: 100, capacityPPS: 8e7, baseRTTms: 6, attackWeight: 10},
		{name: "Amazon", country: "US", asn: 16509, share: 0.05, groups: 3, nsPerGroup: 4, prefixes24: 4, anycast: true, sites: 50, capacityPPS: 4e7, baseRTTms: 12, attackWeight: 8},
		{name: "Microsoft", country: "US", asn: 8068, share: 0.02, groups: 2, nsPerGroup: 4, prefixes24: 4, anycast: true, sites: 40, capacityPPS: 3e7, baseRTTms: 14, attackWeight: 6.5},
		{name: "Fastly", country: "US", asn: 54113, share: 0.012, groups: 1, nsPerGroup: 4, prefixes24: 2, anycast: true, sites: 40, capacityPPS: 2e7, baseRTTms: 8, attackWeight: 5.5},
		// large shared hosting, unicast (Unified Layer hosts the
		// much-attacked shared web IP)
		{name: "Unified Layer", country: "US", asn: 46606, share: 0.04, groups: 2, nsPerGroup: 2, prefixes24: 2, capacityPPS: 2e6, baseRTTms: 95, attackWeight: 13},
		{name: "OVH", country: "FR", asn: 16276, share: 0.04, groups: 2, nsPerGroup: 3, prefixes24: 3, capacityPPS: 3e6, baseRTTms: 12, attackWeight: 11, secondASN: 35540},
		{name: "Hetzner", country: "DE", asn: 24940, share: 0.03, groups: 2, nsPerGroup: 3, prefixes24: 3, capacityPPS: 6e4, baseRTTms: 11, attackWeight: 11},
		{name: "Birbir", country: "TR", asn: 199608, share: 0.004, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2e5, baseRTTms: 45, attackWeight: 4.5},
		{name: "Pendc", country: "TR", asn: 48678, share: 0.004, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2e5, baseRTTms: 45, attackWeight: 2.8},
		// the §5.1 case study: three unicast NSs, three /24s, one ASN,
		// scrubbing deployed between the December and March attacks
		{name: "TransIP", country: "NL", asn: 20857, share: 0.07, groups: 1, nsPerGroup: 3, prefixes24: 3, capacityPPS: 1.25e5, baseRTTms: 5, scrubbingSince: feb2021, attackWeight: 0.5, thirdPartyWeb: 0.27},
		// Russian infrastructure (§5.2, §6.1, Table 6)
		{name: "nic.ru", country: "RU", asn: 48287, share: 0.02, groups: 2, nsPerGroup: 3, prefixes24: 2, capacityPPS: 9e4, baseRTTms: 55, attackWeight: 1.5},
		{name: "Beeline RU", country: "RU", asn: 3216, share: 0.010, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 8e4, baseRTTms: 55, attackWeight: 2.4},
		{name: "MilRu Hosting", country: "RU", asn: 64512, share: 0, groups: 1, nsPerGroup: 3, prefixes24: 1, capacityPPS: 5e4, baseRTTms: 60, attackWeight: 0},
		{name: "RZD Rail", country: "RU", asn: 64513, share: 0, groups: 1, nsPerGroup: 3, prefixes24: 2, capacityPPS: 6e4, baseRTTms: 58, attackWeight: 0},
		{name: "Apple Russia", country: "RU", asn: 64514, share: 0.009, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 5e4, baseRTTms: 62, attackWeight: 1.8},
		// small/medium European hosters: the Table 6 RTT-impact ranking
		{name: "NForce B.V.", country: "NL", asn: 43350, share: 0.012, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2.0e4, baseRTTms: 5, attackWeight: 3.0},
		{name: "Co-Co NL", country: "NL", asn: 64515, share: 0.011, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2.4e4, baseRTTms: 6, attackWeight: 2.6},
		{name: "NMU Group", country: "SE", asn: 64516, share: 0.011, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2.8e4, baseRTTms: 22, attackWeight: 2.4},
		{name: "My Lock De", country: "DE", asn: 64517, share: 0.010, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 3.2e4, baseRTTms: 12, attackWeight: 2.2},
		{name: "DigiHosting NL", country: "NL", asn: 64518, share: 0.010, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 3.4e4, baseRTTms: 6, attackWeight: 2.2},
		{name: "Linode", country: "US", asn: 63949, share: 0.01, groups: 1, nsPerGroup: 3, prefixes24: 2, capacityPPS: 3e5, baseRTTms: 90, attackWeight: 1.8, secondASN: 21844},
		{name: "ITandTEL", country: "AT", asn: 29081, share: 0.009, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 4.0e4, baseRTTms: 18, attackWeight: 2.0},
		{name: "Contabo", country: "DE", asn: 51167, share: 0.012, groups: 1, nsPerGroup: 2, prefixes24: 2, capacityPPS: 7e4, baseRTTms: 12, attackWeight: 2.0},
		{name: "Euskaltel", country: "ES", asn: 12338, share: 0.010, groups: 1, nsPerGroup: 2, prefixes24: 1, capacityPPS: 2.6e4, baseRTTms: 28, attackWeight: 2.2},
	}
}

// openResolverEntries are the public resolvers that appear as NS targets of
// misconfigured domains (Table 5).
type openResolverEntry struct {
	addr     string
	provider string // must match a namedProviders name
	weight   float64
}

func openResolverEntries() []openResolverEntry {
	return []openResolverEntry{
		{addr: "8.8.4.4", provider: "Google", weight: 70},
		{addr: "8.8.8.8", provider: "Google", weight: 57},
		{addr: "1.1.1.1", provider: "Cloudflare", weight: 28},
	}
}

// worldBuilder carries generation state.
type worldBuilder struct {
	cfg  WorldConfig
	rng  *rand.Rand
	db   *dnsdb.DB
	topo *astopo.Builder
	w    *World
	// next24 allocates fresh /24s for nameserver placement.
	next24     uint32
	entries    []astopo.Entry
	orgs       map[astopo.ASN]astopo.Org
	anycast24s []netx.Prefix
	nsSeq      int
	// openResGroups are indexes into w.Groups of the open-resolver
	// pseudo-groups; misconfigured domains delegate to them.
	openResGroups []int
}

// GenerateWorld builds the ecosystem.
func GenerateWorld(cfg WorldConfig) *World {
	b := &worldBuilder{
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed, 0x77071)),
		db:   dnsdb.New(),
		topo: astopo.NewBuilder(),
		orgs: make(map[astopo.ASN]astopo.Org),
		// nameserver space: 81.0.0.0 upward, one fresh /24 at a time
		next24: 0x51000000 >> 8,
	}
	b.w = &World{
		Config:        cfg,
		DB:            b.db,
		Named:         make(map[string]dnsdb.ProviderID),
		AttackWeights: make(map[netx.Addr]float64),
		Orgs:          b.orgs,
		OpenRes:       openres.WellKnown(),
		OtherSpace:    netx.MustParsePrefix("120.0.0.0/6"),
	}
	b.buildNamed()
	b.buildGenerics()
	b.buildDomains()
	b.buildOtherSpace()
	b.buildCensus()
	b.finish()
	return b.w
}

// alloc24 returns a fresh /24 for nameserver placement.
func (b *worldBuilder) alloc24() netx.Prefix {
	p := netx.Prefix{Addr: netx.Addr(b.next24 << 8), Bits: 24}
	b.next24++
	return p
}

func (b *worldBuilder) announce(p netx.Prefix, asn astopo.ASN) {
	b.topo.Announce(p, asn)
	b.entries = append(b.entries, astopo.Entry{Prefix: p, ASN: asn})
}

func (b *worldBuilder) setOrg(asn astopo.ASN, name, country string) {
	if _, ok := b.orgs[asn]; !ok {
		b.orgs[asn] = astopo.Org{Name: name, Country: country}
		b.topo.SetOrg(asn, astopo.Org{Name: name, Country: country})
	}
}

// addProviderNS creates a provider's nameservers according to a template,
// returning the groups created.
func (b *worldBuilder) addProviderNS(t providerTemplate) []Group {
	pid := b.db.AddProvider(dnsdb.Provider{
		Name:           t.name,
		Country:        t.country,
		ASNs:           []astopo.ASN{t.asn},
		Deployment:     deploymentOf(t),
		ScrubbingSince: t.scrubbingSince,
	})
	b.w.Named[t.name] = pid
	b.setOrg(t.asn, t.name, t.country)
	var groups []Group
	for g := 0; g < t.groups; g++ {
		// allocate the group's /24 pool
		n24 := t.prefixes24
		if n24 <= 0 {
			n24 = 1
		}
		pool := make([]netx.Prefix, n24)
		for i := range pool {
			pool[i] = b.alloc24()
			asn := t.asn
			if t.secondASN != 0 && i >= (n24+1)/2 {
				asn = t.secondASN
				b.setOrg(asn, t.name+" Alt", t.country)
			}
			b.announce(pool[i], asn)
			if t.anycast || (t.partialAnycast && i == 0) {
				b.anycast24s = append(b.anycast24s, pool[i])
			}
		}
		grp := Group{Provider: pid}
		for i := 0; i < t.nsPerGroup; i++ {
			p := pool[i%len(pool)]
			addr := p.Nth(uint64(10 + b.rng.IntN(200)))
			for {
				if _, exists := b.db.NameserverByAddr(addr); !exists {
					break
				}
				addr = p.Nth(uint64(10 + b.rng.IntN(200)))
			}
			isAny := t.anycast || (t.partialAnycast && i == 0)
			sites := 1
			if isAny {
				sites = t.sites
				if sites < 2 {
					sites = 8
				}
			}
			b.nsSeq++
			id, err := b.db.AddNameserver(dnsdb.Nameserver{
				Host:        fmt.Sprintf("ns%d.%s", i+1, hostLabel(t.name, g)),
				Addr:        addr,
				Provider:    pid,
				Anycast:     isAny,
				Sites:       sites,
				CapacityPPS: t.capacityPPS,
				BaseRTT:     b.baseRTT(t.baseRTTms),
			})
			if err != nil {
				panic(err) // fresh /24 allocation guarantees uniqueness
			}
			grp.NS = append(grp.NS, id)
			if t.attackWeight > 0 {
				b.w.AttackWeights[addr] = t.attackWeight
			}
		}
		groups = append(groups, grp)
	}
	b.w.Groups = append(b.w.Groups, groups...)
	return groups
}

func deploymentOf(t providerTemplate) dnsdb.Deployment {
	switch {
	case t.anycast:
		return dnsdb.DeployAnycast
	case t.partialAnycast:
		return dnsdb.DeployPartialAnycast
	default:
		return dnsdb.DeployUnicast
	}
}

func hostLabel(name string, group int) string {
	label := make([]byte, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'A' && c <= 'Z':
			label = append(label, byte(c-'A'+'a'))
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			label = append(label, byte(c))
		}
	}
	return fmt.Sprintf("%s-g%d.net", label, group)
}

// baseRTT draws a jittered base RTT around a mean in milliseconds.
func (b *worldBuilder) baseRTT(ms float64) time.Duration {
	j := stats.LogNormal(b.rng, 0, 0.15)
	return time.Duration(ms * j * float64(time.Millisecond))
}
