package scenario

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
	"dnsddos/internal/telescope"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	cfg := DefaultWorldConfig()
	cfg.Domains = 3000
	cfg.GenericProviders = 30
	return GenerateWorld(cfg)
}

func TestWorldDeterministic(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Domains = 500
	cfg.GenericProviders = 10
	a, b := GenerateWorld(cfg), GenerateWorld(cfg)
	if len(a.DB.Domains) != len(b.DB.Domains) || len(a.DB.Nameservers) != len(b.DB.Nameservers) {
		t.Fatal("world size differs across runs with the same seed")
	}
	for i := range a.DB.Nameservers {
		if a.DB.Nameservers[i].Addr != b.DB.Nameservers[i].Addr {
			t.Fatalf("nameserver %d addr differs", i)
		}
	}
	for i := range a.DB.Domains {
		if a.DB.Domains[i].Name != b.DB.Domains[i].Name {
			t.Fatalf("domain %d name differs", i)
		}
	}
}

func TestWorldInvariants(t *testing.T) {
	w := smallWorld(t)
	if len(w.DB.Domains) != w.Config.Domains {
		t.Errorf("domains = %d, want %d", len(w.DB.Domains), w.Config.Domains)
	}
	// every domain has at least one nameserver, every NS resolves back
	for _, d := range w.DB.Domains {
		if len(d.NS) == 0 {
			t.Fatalf("domain %s has no nameservers", d.Name)
		}
		for _, id := range d.NS {
			ns := w.DB.Nameservers[id]
			back, ok := w.DB.NameserverByAddr(ns.Addr)
			if !ok || back.ID != id {
				t.Fatalf("nameserver index broken for %s", ns.Addr)
			}
		}
	}
	// every nameserver has positive capacity and base RTT, and a valid
	// provider
	for _, ns := range w.DB.Nameservers {
		if ns.CapacityPPS <= 0 || ns.BaseRTT <= 0 {
			t.Fatalf("nameserver %s capacity/RTT unset", ns.Addr)
		}
		if int(ns.Provider) >= len(w.DB.Providers) {
			t.Fatalf("nameserver %s has invalid provider", ns.Addr)
		}
		if ns.Anycast && ns.Sites < 2 {
			t.Fatalf("anycast nameserver %s has %d sites", ns.Addr, ns.Sites)
		}
	}
	// nameservers don't collide with the telescope or the other-victim
	// space
	tel := telescope.NewUCSD()
	for _, ns := range w.DB.Nameservers {
		if tel.Contains(ns.Addr) {
			t.Fatalf("nameserver inside the darknet: %s", ns.Addr)
		}
		if w.OtherSpace.Contains(ns.Addr) {
			t.Fatalf("nameserver inside the other-victim space: %s", ns.Addr)
		}
	}
}

func TestNamedProvidersPresent(t *testing.T) {
	w := smallWorld(t)
	for _, name := range []string{"TransIP", "Cloudflare", "Google", "MilRu Hosting", "RZD Rail", "NForce B.V."} {
		if _, ok := w.Named[name]; !ok {
			t.Errorf("named provider %q missing", name)
		}
	}
	// TransIP's §5.1 deployment: 3 unicast NSs on 3 /24s, 1 ASN
	transip := groupNS(w, "TransIP")
	if len(transip) != 3 {
		t.Fatalf("TransIP has %d nameservers", len(transip))
	}
	p24 := map[netx.Prefix]bool{}
	for _, id := range transip {
		ns := w.DB.Nameservers[id]
		if ns.Anycast {
			t.Error("TransIP must be unicast")
		}
		p24[ns.Addr.Slash24()] = true
	}
	if len(p24) != 3 {
		t.Errorf("TransIP spans %d /24s, want 3", len(p24))
	}
	// mil.ru: 3 NSs in ONE /24 (§5.2.3)
	mil := groupNS(w, "MilRu Hosting")
	m24 := map[netx.Prefix]bool{}
	for _, id := range mil {
		m24[w.DB.Nameservers[id].Addr.Slash24()] = true
	}
	if len(mil) != 3 || len(m24) != 1 {
		t.Errorf("mil.ru: %d NSs in %d /24s, want 3 in 1", len(mil), len(m24))
	}
}

func TestOpenResolversRegistered(t *testing.T) {
	w := smallWorld(t)
	for _, ip := range []string{"8.8.8.8", "8.8.4.4", "1.1.1.1"} {
		a := netx.MustParseAddr(ip)
		ns, ok := w.DB.NameserverByAddr(a)
		if !ok {
			t.Errorf("open resolver %s not registered as NS target", ip)
			continue
		}
		if n := w.DB.NumDomainsOf(ns.ID); n == 0 {
			t.Errorf("no misconfigured domains delegate to %s", ip)
		}
		if !w.OpenRes.Contains(a) {
			t.Errorf("%s missing from the open-resolver list", ip)
		}
	}
}

func TestCaseStudyDomainsExist(t *testing.T) {
	w := smallWorld(t)
	names := map[string]bool{}
	for _, d := range w.DB.Domains {
		names[d.Name] = true
	}
	for _, n := range []string{"mil.ru", "rzd.ru"} {
		if !names[n] {
			t.Errorf("case-study domain %q missing", n)
		}
	}
}

func TestProviderSizesFollowShares(t *testing.T) {
	w := smallWorld(t)
	counts := map[dnsdb.ProviderID]int{}
	for i := range w.DB.Domains {
		d := &w.DB.Domains[i]
		counts[w.DB.Nameservers[d.NS[0]].Provider]++
	}
	transip := counts[w.Named["TransIP"]]
	frac := float64(transip) / float64(len(w.DB.Domains))
	// template share is 7%
	if frac < 0.05 || frac > 0.09 {
		t.Errorf("TransIP hosts %.1f%% of domains, want ≈7%%", frac*100)
	}
	cf := float64(counts[w.Named["Cloudflare"]]) / float64(len(w.DB.Domains))
	if cf < 0.09 || cf > 0.17 {
		t.Errorf("Cloudflare hosts %.1f%%, want ≈13%%", cf*100)
	}
}

func TestCensusCoversAnycastNS(t *testing.T) {
	w := smallWorld(t)
	snap := w.Census.Snapshots()[0]
	var anycastNS, detected int
	for _, ns := range w.DB.Nameservers {
		if ns.Anycast {
			anycastNS++
			if snap.IsAnycast(ns.Addr) {
				detected++
			}
		}
	}
	if anycastNS == 0 {
		t.Fatal("no anycast nameservers generated")
	}
	recall := float64(detected) / float64(anycastNS)
	if recall < 0.7 || recall > 1.0 {
		t.Errorf("census recall = %.2f, configured 0.9", recall)
	}
}

func TestTopoCoversNameservers(t *testing.T) {
	w := smallWorld(t)
	for _, ns := range w.DB.Nameservers {
		if _, ok := w.Topo.Lookup(ns.Addr); !ok {
			t.Fatalf("nameserver %s not covered by prefix-to-AS table", ns.Addr)
		}
	}
	// single-ASN invariant for TransIP (§5.1.1)
	asns := map[string]bool{}
	for _, id := range groupNS(w, "TransIP") {
		asn, _ := w.Topo.Lookup(w.DB.Nameservers[id].Addr)
		asns[asn.String()] = true
	}
	if len(asns) != 1 {
		t.Errorf("TransIP spans %d ASNs, want 1", len(asns))
	}
}

func TestScheduleShape(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultAttackConfig()
	cfg.TotalAttacks = 4000
	sched := GenerateSchedule(cfg, w)
	specs := sched.Sched.Specs()
	var spoofed, dns, invisible int
	nsAddrs := w.DB.AllNSAddrs()
	for _, s := range specs {
		if s.Vector == attacksim.VectorRandomSpoofed {
			spoofed++
			if _, ok := nsAddrs[s.Target]; ok {
				dns++
			}
		} else {
			invisible++
		}
		if !s.End.After(s.Start) {
			t.Fatalf("spec with non-positive duration: %+v", s)
		}
		if s.Start.Before(clock.StudyStart) || s.Start.After(clock.StudyEnd) {
			t.Fatalf("spec outside study window: %v", s.Start)
		}
		if s.PPS <= 0 {
			t.Fatalf("spec with no rate")
		}
	}
	if spoofed < 3500 {
		t.Errorf("spoofed specs = %d", spoofed)
	}
	share := float64(dns) / float64(spoofed)
	if share < 0.005 || share > 0.05 {
		t.Errorf("DNS share = %.4f", share)
	}
	if invisible == 0 {
		t.Error("no multi-vector components generated")
	}
}

func TestCaseStudySpecsScripted(t *testing.T) {
	w := smallWorld(t)
	sched := GenerateSchedule(DefaultAttackConfig(), w)
	cs := sched.CaseStudies
	if cs.TransIPDecStart != time.Date(2020, 11, 30, 22, 0, 0, 0, time.UTC) {
		t.Errorf("TransIP Dec start = %v", cs.TransIPDecStart)
	}
	if cs.RZDTelegram.Sub(cs.RZDStart) != 12*time.Minute {
		t.Errorf("Telegram delta = %v, want 12m (Fig. 4)", cs.RZDTelegram.Sub(cs.RZDStart))
	}
	if len(sched.Blackouts) != 1 {
		t.Fatalf("blackouts = %d, want 1 (mil.ru geofence)", len(sched.Blackouts))
	}
	b := sched.Blackouts[0]
	if !b.Prefix.Contains(cs.MilRuNS[0]) {
		t.Error("blackout must cover the mil.ru /24")
	}
	// the Dec attack on NS A carries the Table 2 pool
	var foundDecA bool
	for _, s := range sched.Sched.Specs() {
		if s.Target == cs.TransIPNS[0] && s.Start.Equal(cs.TransIPDecStart) && s.Vector == attacksim.VectorRandomSpoofed {
			foundDecA = true
			if s.PPS != 124000 || s.SpoofedSources != 5_790_000 {
				t.Errorf("Dec NS-A spec = pps %v pool %d", s.PPS, s.SpoofedSources)
			}
		}
	}
	if !foundDecA {
		t.Error("TransIP December spec for NS A missing")
	}
}

func TestSynthesizeObsStatistics(t *testing.T) {
	w := smallWorld(t)
	tel := telescope.NewUCSD()
	// a single scripted spec: 34 kpps for one hour against a mega NS
	target := w.DB.Nameservers[groupNS(w, "Cloudflare")[0]].Addr
	start := clock.StudyStart.Add(100 * 24 * time.Hour)
	spec := attacksim.Spec{
		Target: target, Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{53},
		Start: start, End: start.Add(time.Hour), PPS: 34000,
	}
	sched := attacksim.NewSchedule([]attacksim.Spec{spec})
	obs := SynthesizeObs(DefaultSynthConfig(), w, sched, tel)
	if len(obs) != 12 {
		t.Fatalf("observations = %d, want 12 (one hour of windows)", len(obs))
	}
	var total int64
	for _, o := range obs {
		total += o.Packets
		if o.Victim != target || o.Proto != packet.ProtoTCP {
			t.Errorf("attribution: %+v", o)
		}
		if o.Ports[53] != o.Packets {
			t.Errorf("port split: %+v", o.Ports)
		}
		if o.Slash16 < 100 {
			t.Errorf("spread = %d for ≈30k packets/window", o.Slash16)
		}
	}
	// expected: 34000 pps × 3600 s × (1/341.3) ≈ 358k packets
	want := 34000.0 * 3600 * tel.Fraction()
	if float64(total) < want*0.95 || float64(total) > want*1.05 {
		t.Errorf("total telescope packets = %d, want ≈%.0f", total, want)
	}
	// the inference recovers the attack with the right timing
	attacks := rsdos.Infer(rsdos.DefaultConfig(), obs)
	if len(attacks) != 1 {
		t.Fatalf("inferred %d attacks", len(attacks))
	}
	if attacks[0].Start() != start || attacks[0].End() != start.Add(time.Hour) {
		t.Errorf("inferred interval = %v..%v", attacks[0].Start(), attacks[0].End())
	}
	// peak ppm ≈ 34000×60/341.3 ≈ 5978
	if attacks[0].PeakPPM < 5000 || attacks[0].PeakPPM > 7000 {
		t.Errorf("peak ppm = %v, want ≈6000", attacks[0].PeakPPM)
	}
}

func TestSynthesizeSuppressionUnderOverload(t *testing.T) {
	w := smallWorld(t)
	tel := telescope.NewUCSD()
	// an attack far beyond a small victim's response capacity produces
	// *less* backscatter than the raw rate implies (§6.5)
	victim := w.OtherSpace.Nth(12345)
	start := clock.StudyStart.Add(10 * 24 * time.Hour)
	spec := attacksim.Spec{
		Target: victim, Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{80},
		Start: start, End: start.Add(time.Hour), PPS: 1e7,
	}
	obs := SynthesizeObs(DefaultSynthConfig(), w, attacksim.NewSchedule([]attacksim.Spec{spec}), tel)
	var total int64
	for _, o := range obs {
		total += o.Packets
	}
	unsuppressed := 1e7 * 3600 * tel.Fraction()
	if float64(total) > unsuppressed/5 {
		t.Errorf("no suppression: %d packets vs raw %.0f", total, unsuppressed)
	}
}

func TestBoundedPoolCapsUniqueDsts(t *testing.T) {
	w := smallWorld(t)
	tel := telescope.NewUCSD()
	start := clock.StudyStart.Add(5 * 24 * time.Hour)
	spec := attacksim.Spec{
		Target: w.OtherSpace.Nth(7), Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{80},
		Start: start, End: start.Add(time.Hour), PPS: 3e4,
		SpoofedSources: 341_000, // pool-in-telescope ≈ 1000
	}
	obs := SynthesizeObs(DefaultSynthConfig(), w, attacksim.NewSchedule([]attacksim.Spec{spec}), tel)
	for _, o := range obs {
		if o.UniqueDsts > 1100 {
			t.Errorf("unique dsts %d exceed pool share ≈1000", o.UniqueDsts)
		}
	}
}

func TestNoiseRejectedByInference(t *testing.T) {
	tel := telescope.NewUCSD()
	cfg := DefaultNoiseConfig()
	cfg.Days = 30
	obs := SynthesizeNoise(cfg, tel)
	if len(obs) == 0 {
		t.Fatal("no noise generated")
	}
	attacks := rsdos.Infer(rsdos.DefaultConfig(), obs)
	// the /16-spread threshold should reject essentially all scanner and
	// misconfiguration traffic; allow a tiny residue
	if frac := float64(len(attacks)) / float64(cfg.Days*(cfg.ScannersPerDay+cfg.MisconfiguredPerDay)); frac > 0.01 {
		t.Errorf("noise produced %d inferred attacks (%.3f per source); thresholds should reject it", len(attacks), frac)
	}
}

func TestNoiseDoesNotPerturbAttackInference(t *testing.T) {
	w := smallWorld(t)
	tel := telescope.NewUCSD()
	acfg := DefaultAttackConfig()
	acfg.TotalAttacks = 1500
	sched := GenerateSchedule(acfg, w)
	attackObs := SynthesizeObs(DefaultSynthConfig(), w, sched.Sched, tel)
	ncfg := DefaultNoiseConfig()
	ncfg.Days = 0 // full window
	noise := SynthesizeNoise(ncfg, tel)

	clean := rsdos.Infer(rsdos.DefaultConfig(), attackObs)
	noisy := rsdos.Infer(rsdos.DefaultConfig(), append(append([]rsdos.WindowObs(nil), attackObs...), noise...))

	// count attacks whose victims are real schedule targets: unchanged
	targets := map[netx.Addr]bool{}
	for _, s := range sched.Sched.Specs() {
		targets[s.Target] = true
	}
	count := func(attacks []rsdos.Attack) int {
		n := 0
		for _, a := range attacks {
			if targets[a.Victim] {
				n++
			}
		}
		return n
	}
	if c, n := count(clean), count(noisy); c != n {
		t.Errorf("real-attack inference changed under noise: %d vs %d", c, n)
	}
	// and the noise adds at most a small contamination
	extra := len(noisy) - len(clean)
	if extra > len(clean)/20 {
		t.Errorf("noise added %d spurious attacks to %d real ones", extra, len(clean))
	}
}

// TestThinnedCountsArePoisson validates the flow-level synthesizer's core
// statistical claim: for a constant-rate attack, per-window telescope
// packet counts follow Poisson(pps × 300 × fraction), KS-indistinguishable
// from direct Poisson samples.
func TestThinnedCountsArePoisson(t *testing.T) {
	w := smallWorld(t)
	tel := telescope.NewUCSD()
	target := w.OtherSpace.Nth(4242)
	start := clock.StudyStart.Add(40 * 24 * time.Hour)
	const pps = 2000.0
	spec := attacksim.Spec{
		Target: target, Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{80},
		Start: start, End: start.Add(200 * time.Hour), PPS: pps,
	}
	obs := SynthesizeObs(DefaultSynthConfig(), w, attacksim.NewSchedule([]attacksim.Spec{spec}), tel)
	var counts []float64
	for _, o := range obs {
		counts = append(counts, float64(o.Packets))
	}
	if len(counts) < 2000 {
		t.Fatalf("windows = %d", len(counts))
	}
	lambda := pps * 300 * tel.Fraction()
	rng := rand.New(rand.NewPCG(77, 77))
	ref := make([]float64, len(counts))
	for i := range ref {
		ref[i] = float64(stats.Poisson(rng, lambda))
	}
	d := stats.KolmogorovSmirnov(counts, ref)
	if crit := stats.KSCritical(0.01, len(counts), len(ref)); d > 2*crit {
		t.Errorf("thinned counts diverge from Poisson(%.1f): KS = %v > %v", lambda, d, crit)
	}
}

// TestDurationBimodality: the generated DNS-attack durations show the §6.5
// modes near 15 and 60 minutes.
func TestDurationBimodality(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultAttackConfig()
	cfg.TotalAttacks = 20000
	cfg.IncludeCaseStudies = false
	sched := GenerateSchedule(cfg, w)
	h := stats.NewHistogram(0, 120, 24) // 5-minute bins
	for _, s := range sched.Sched.Specs() {
		if s.Vector == attacksim.VectorRandomSpoofed {
			h.Add(s.End.Sub(s.Start).Minutes())
		}
	}
	modes := h.Modes(h.N / 50)
	if len(modes) < 2 {
		t.Fatalf("modes = %v, want bimodal", modes)
	}
	near := func(m, target float64) bool { return m >= target-10 && m <= target+10 }
	var found15, found60 bool
	for _, m := range modes {
		if near(m, 15) {
			found15 = true
		}
		if near(m, 60) {
			found60 = true
		}
	}
	if !found15 || !found60 {
		t.Errorf("duration modes = %v, want peaks near 15 and 60 minutes", modes)
	}
}
