package simnet

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/nsset"
)

func TestVantageRTTScale(t *testing.T) {
	f := newFixture(t)
	n := New(DefaultParams(), f.db, attacksim.NewSchedule(nil))
	us := n.WithVantage(Vantage{Name: "us-east", RTTScale: 8, CatchmentSeed: 1})
	rng := rand.New(rand.NewPCG(1, 1))
	var nl, usSum time.Duration
	const trials = 300
	for i := 0; i < trials; i++ {
		_, r1 := n.Query(rng, f.uni, t0)
		_, r2 := us.Query(rng, f.uni, t0)
		nl += r1
		usSum += r2
	}
	ratio := float64(usSum) / float64(nl)
	if ratio < 6 || ratio > 10 {
		t.Errorf("US/NL unicast RTT ratio = %.2f, want ≈8", ratio)
	}
	// anycast reaches a nearby site from both vantages: no scaling
	var nlAny, usAny time.Duration
	for i := 0; i < trials; i++ {
		_, r1 := n.Query(rng, f.any, t0)
		_, r2 := us.Query(rng, f.any, t0)
		nlAny += r1
		usAny += r2
	}
	anyRatio := float64(usAny) / float64(nlAny)
	if anyRatio < 0.8 || anyRatio > 1.25 {
		t.Errorf("anycast RTT ratio across vantages = %.2f, want ≈1", anyRatio)
	}
}

func TestCatchmentMasking(t *testing.T) {
	f := newFixture(t)
	// attack big enough that a hot anycast site saturates while a cold
	// one stays comfortable: per-even-site load = 1.2e5/20 = 6e3 → with
	// site factors in [0.1,1.9] utilization spans [0.006, 0.114]... use
	// a larger attack so the spread crosses the congestion knee
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.anyAddr, t0, time.Hour, 3.2e6, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	ns := &f.db.Nameservers[f.any]

	// different vantages map to different sites with different load
	var utils []float64
	seen := map[int]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		v := n.WithVantage(Vantage{Name: "v", RTTScale: 1, CatchmentSeed: seed})
		seen[v.siteOf(ns)] = true
		utils = append(utils, v.LoadStateAt(f.any, t0.Add(10*time.Minute)).Utilization())
	}
	if len(seen) < 5 {
		t.Fatalf("40 vantages landed on only %d sites", len(seen))
	}
	min, max := utils[0], utils[0]
	for _, u := range utils {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max/min < 2 {
		t.Errorf("catchment load spread = [%.2f, %.2f]; sites should load unevenly", min, max)
	}
}

func TestCatchmentMaskingEndToEnd(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.anyAddr, t0, time.Hour, 6e6, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	rng := rand.New(rand.NewPCG(2, 2))
	// find a hot-site vantage and a cold-site vantage
	ns := &f.db.Nameservers[f.any]
	var hot, cold *Net
	for seed := uint64(0); seed < 64; seed++ {
		v := n.WithVantage(Vantage{CatchmentSeed: seed})
		factor := siteLoadFactor(ns, v.siteOf(ns))
		if factor > 1.6 && hot == nil {
			hot = v
		}
		if factor < 0.4 && cold == nil {
			cold = v
		}
	}
	if hot == nil || cold == nil {
		t.Skip("no sufficiently hot/cold site found for this fixture")
	}
	fails := func(net *Net) int {
		n := 0
		for i := 0; i < 400; i++ {
			if st, _ := net.Query(rng, f.any, t0.Add(10*time.Minute)); st != nsset.StatusOK {
				n++
			}
		}
		return n
	}
	hotFails, coldFails := fails(hot), fails(cold)
	if hotFails <= coldFails {
		t.Errorf("hot-site vantage failed %d vs cold-site %d; attack should be masked from the cold catchment", hotFails, coldFails)
	}
}

func TestSiteLoadFactorMeanNearOne(t *testing.T) {
	f := newFixture(t)
	ns := &f.db.Nameservers[f.any]
	var sum float64
	for s := 0; s < ns.Sites; s++ {
		fac := siteLoadFactor(ns, s)
		if fac < 0.1 || fac > 1.9 {
			t.Fatalf("site factor %v out of range", fac)
		}
		sum += fac
	}
	mean := sum / float64(ns.Sites)
	if mean < 0.7 || mean > 1.3 {
		t.Errorf("mean site factor = %.2f, want ≈1 (load conservation)", mean)
	}
}

func TestUnicastUnaffectedByVantageSeed(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 8e4, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	u1 := n.WithVantage(Vantage{CatchmentSeed: 1}).LoadStateAt(f.uni, t0.Add(time.Minute))
	u2 := n.WithVantage(Vantage{CatchmentSeed: 99}).LoadStateAt(f.uni, t0.Add(time.Minute))
	if u1 != u2 {
		t.Errorf("unicast load differs across vantages: %+v vs %+v", u1, u2)
	}
}
