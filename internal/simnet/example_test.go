package simnet_test

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/simnet"
)

// Example builds a one-nameserver world, floods it at three times its
// capacity, and shows how the data plane turns the attack into degraded
// query outcomes.
func Example() {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "SmallHost"})
	id, err := db.AddNameserver(dnsdb.Nameserver{
		Addr:        netx.MustParseAddr("192.0.2.53"),
		Provider:    pid,
		CapacityPPS: 1e5,
		BaseRTT:     10 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	db.Freeze()

	start := clock.StudyStart.Add(24 * time.Hour)
	sched := attacksim.NewSchedule([]attacksim.Spec{{
		Target: netx.MustParseAddr("192.0.2.53"),
		Vector: attacksim.VectorRandomSpoofed,
		Proto:  packet.ProtoTCP,
		Ports:  []uint16{53},
		Start:  start,
		End:    start.Add(time.Hour),
		PPS:    3e5, // 3x capacity
	}})
	net := simnet.New(simnet.DefaultParams(), db, sched)

	ls := net.LoadStateAt(id, start.Add(30*time.Minute))
	fmt.Printf("utilization during attack: %.1f\n", ls.Utilization())

	rng := rand.New(rand.NewPCG(1, 1))
	var fails int
	for i := 0; i < 1000; i++ {
		if st, _ := net.Query(rng, id, start.Add(30*time.Minute)); st != nsset.StatusOK {
			fails++
		}
	}
	fmt.Printf("most queries fail under 3x overload: %v\n", fails > 500)
	// before the attack the server is healthy
	st, rtt := net.Query(rng, id, start.Add(-time.Hour))
	fmt.Printf("before the attack: %v at ~%dms\n", st, rtt.Round(10*time.Millisecond)/time.Millisecond)
	// Output:
	// utilization during attack: 3.0
	// most queries fail under 3x overload: true
	// before the attack: OK at ~10ms
}
