package simnet

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
)

// fixture returns a world with one unicast and one anycast nameserver plus
// an attack builder.
type fixture struct {
	db      *dnsdb.DB
	uni     dnsdb.NameserverID
	any     dnsdb.NameserverID
	uniAddr netx.Addr
	anyAddr netx.Addr
	scrubNS dnsdb.NameserverID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := dnsdb.New()
	pUni := db.AddProvider(dnsdb.Provider{Name: "Uni"})
	pAny := db.AddProvider(dnsdb.Provider{Name: "Any"})
	pScrub := db.AddProvider(dnsdb.Provider{
		Name:           "Scrubbed",
		ScrubbingSince: clock.StudyStart, // always scrubbing
	})
	f := &fixture{db: db}
	f.uniAddr = netx.MustParseAddr("192.0.2.1")
	f.anyAddr = netx.MustParseAddr("198.51.100.1")
	var err error
	f.uni, err = db.AddNameserver(dnsdb.Nameserver{
		Addr: f.uniAddr, Provider: pUni, Sites: 1, CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.any, err = db.AddNameserver(dnsdb.Nameserver{
		Addr: f.anyAddr, Provider: pAny, Anycast: true, Sites: 20, CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.scrubNS, err = db.AddNameserver(dnsdb.Nameserver{
		Addr: netx.MustParseAddr("203.0.113.1"), Provider: pScrub, Sites: 1, CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Freeze()
	return f
}

func attack(target netx.Addr, start time.Time, dur time.Duration, pps float64, port uint16, vector attacksim.Vector) attacksim.Spec {
	return attacksim.Spec{
		Target: target, Vector: vector, Proto: packet.ProtoTCP,
		Ports: []uint16{port}, Start: start, End: start.Add(dur), PPS: pps,
	}
}

var t0 = clock.StudyStart.Add(48 * time.Hour)

func TestQuietServerFastAndReliable(t *testing.T) {
	f := newFixture(t)
	n := New(DefaultParams(), f.db, attacksim.NewSchedule(nil))
	rng := rand.New(rand.NewPCG(1, 1))
	var fails int
	for i := 0; i < 2000; i++ {
		st, rtt := n.Query(rng, f.uni, t0)
		if st != nsset.StatusOK {
			fails++
			continue
		}
		if rtt < 5*time.Millisecond || rtt > 20*time.Millisecond {
			t.Fatalf("quiet RTT = %v", rtt)
		}
	}
	if fails > 10 {
		t.Errorf("quiet server failed %d/2000", fails)
	}
}

func TestLoadInflatesRTT(t *testing.T) {
	f := newFixture(t)
	// port-53 attack at 80% of capacity
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 8e4, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	rng := rand.New(rand.NewPCG(2, 2))
	var sum time.Duration
	var okCount int
	for i := 0; i < 500; i++ {
		st, rtt := n.Query(rng, f.uni, t0.Add(10*time.Minute))
		if st == nsset.StatusOK {
			okCount++
			sum += rtt
		}
	}
	if okCount == 0 {
		t.Fatal("all queries failed at ρ=0.8")
	}
	avg := sum / time.Duration(okCount)
	if avg < 30*time.Millisecond || avg > 120*time.Millisecond {
		t.Errorf("avg RTT under 0.8 load = %v, want ≈50ms (5x)", avg)
	}
}

func TestSaturationCausesTimeouts(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 3e5, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	rng := rand.New(rand.NewPCG(3, 3))
	var fails int
	for i := 0; i < 500; i++ {
		if st, _ := n.Query(rng, f.uni, t0.Add(10*time.Minute)); st != nsset.StatusOK {
			fails++
		}
	}
	if fails < 250 {
		t.Errorf("3x overload failed only %d/500", fails)
	}
}

func TestAnycastAbsorbsAttack(t *testing.T) {
	f := newFixture(t)
	pps := 3e5
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.anyAddr, t0, time.Hour, pps, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	ls := n.LoadStateAt(f.any, t0.Add(10*time.Minute))
	// per-site load = pps/20 → ρ = 0.15
	if ls.LinkUtil > 0.2 {
		t.Errorf("anycast per-site utilization = %v", ls.LinkUtil)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	var fails int
	for i := 0; i < 500; i++ {
		if st, _ := n.Query(rng, f.any, t0.Add(10*time.Minute)); st != nsset.StatusOK {
			fails++
		}
	}
	if fails > 10 {
		t.Errorf("anycast failed %d/500 under the same flood that kills unicast", fails)
	}
}

func TestPortWeighting(t *testing.T) {
	f := newFixture(t)
	mk := func(port uint16) LoadState {
		sched := attacksim.NewSchedule([]attacksim.Spec{
			attack(f.uniAddr, t0, time.Hour, 1e5, port, attacksim.VectorRandomSpoofed),
		})
		return New(DefaultParams(), f.db, sched).LoadStateAt(f.uni, t0.Add(10*time.Minute))
	}
	dns, web := mk(53), mk(80)
	if dns.LinkUtil <= web.LinkUtil {
		t.Errorf("port-53 weight (%v) should exceed port-80 (%v)", dns.LinkUtil, web.LinkUtil)
	}
	if dns.AppUtil == 0 || web.AppUtil != 0 {
		t.Errorf("app util: dns=%v web=%v", dns.AppUtil, web.AppUtil)
	}
}

func TestInvisibleVectorsLoadVictim(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 2e5, 53, attacksim.VectorDirect),
	})
	n := New(DefaultParams(), f.db, sched)
	if ls := n.LoadStateAt(f.uni, t0.Add(time.Minute)); ls.LinkUtil < 1 {
		t.Errorf("direct vector should load the victim: %v", ls.LinkUtil)
	}
}

func TestSlash24Coupling(t *testing.T) {
	f := newFixture(t)
	neighbor := f.uniAddr.Slash24().Nth(200) // same /24, not a nameserver
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(neighbor, t0, time.Hour, 1e5, 80, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	ls := n.LoadStateAt(f.uni, t0.Add(time.Minute))
	// coupling 0.7 × weight 0.55 × 1e5/1e5 = 0.385
	if ls.LinkUtil < 0.3 || ls.LinkUtil > 0.5 {
		t.Errorf("coupled utilization = %v, want ≈0.385", ls.LinkUtil)
	}
	// and zero coupling disables it
	p := DefaultParams()
	p.Slash24Coupling = 0
	if ls := New(p, f.db, sched).LoadStateAt(f.uni, t0.Add(time.Minute)); ls.LinkUtil != 0 {
		t.Errorf("no-coupling utilization = %v", ls.LinkUtil)
	}
}

func TestScrubbingEngagesAfterDelay(t *testing.T) {
	f := newFixture(t)
	scrubAddr := f.db.Nameservers[f.scrubNS].Addr
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(scrubAddr, t0, 2*time.Hour, 2e5, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	before := n.LoadStateAt(f.scrubNS, t0.Add(10*time.Minute)) // within ScrubDelay
	after := n.LoadStateAt(f.scrubNS, t0.Add(40*time.Minute))
	if before.LinkUtil <= after.LinkUtil {
		t.Errorf("scrubbing should shed load: before=%v after=%v", before.LinkUtil, after.LinkUtil)
	}
	wantAfter := before.LinkUtil * (1 - DefaultParams().ScrubEfficiency)
	if diff := after.LinkUtil - wantAfter; diff > 0.01 || diff < -0.01 {
		t.Errorf("post-scrub utilization = %v, want ≈%v", after.LinkUtil, wantAfter)
	}
}

func TestResidualImpairmentDecays(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 9e4, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	end := t0.Add(time.Hour)
	r1 := n.LoadStateAt(f.uni, end.Add(30*time.Minute)).Residual
	r2 := n.LoadStateAt(f.uni, end.Add(3*time.Hour)).Residual
	r3 := n.LoadStateAt(f.uni, end.Add(30*time.Hour)).Residual
	if !(r1 > r2 && r2 > 0) {
		t.Errorf("residual should decay: %v → %v", r1, r2)
	}
	if r3 != 0 {
		t.Errorf("residual should vanish after 8τ: %v", r3)
	}
	// scrubbed providers recover almost immediately
	scrubAddr := f.db.Nameservers[f.scrubNS].Addr
	sched2 := attacksim.NewSchedule([]attacksim.Spec{
		attack(scrubAddr, t0, time.Hour, 9e4, 53, attacksim.VectorRandomSpoofed),
	})
	n2 := New(DefaultParams(), f.db, sched2)
	if r := n2.LoadStateAt(f.scrubNS, end.Add(time.Hour)).Residual; r > 0.01 {
		t.Errorf("scrubbed residual after 1h = %v", r)
	}
}

func TestBlackout(t *testing.T) {
	f := newFixture(t)
	b := Blackout{
		Prefix: f.uniAddr.Slash24(),
		From:   t0,
		To:     t0.Add(time.Hour),
	}
	n := New(DefaultParams(), f.db, attacksim.NewSchedule(nil), b)
	rng := rand.New(rand.NewPCG(5, 5))
	if st, _ := n.Query(rng, f.uni, t0.Add(time.Minute)); st != nsset.StatusTimeout {
		t.Errorf("blacked-out query = %v", st)
	}
	if st, _ := n.Query(rng, f.uni, t0.Add(2*time.Hour)); st != nsset.StatusOK {
		t.Errorf("after blackout = %v", st)
	}
	if st, _ := n.Query(rng, f.any, t0.Add(time.Minute)); st != nsset.StatusOK {
		t.Errorf("other prefix during blackout = %v", st)
	}
}

func TestBlackoutCovers(t *testing.T) {
	b := Blackout{Prefix: netx.MustParsePrefix("10.0.0.0/24"), From: t0, To: t0.Add(time.Hour)}
	if !b.Covers(netx.MustParseAddr("10.0.0.7"), t0) {
		t.Error("inside prefix at start")
	}
	if b.Covers(netx.MustParseAddr("10.0.0.7"), t0.Add(time.Hour)) {
		t.Error("exclusive end")
	}
	if b.Covers(netx.MustParseAddr("10.0.1.7"), t0) {
		t.Error("outside prefix")
	}
}

func TestServFailOnAppOverload(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 5e5, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	rng := rand.New(rand.NewPCG(6, 6))
	var timeouts, servfails int
	for i := 0; i < 3000; i++ {
		switch st, _ := n.Query(rng, f.uni, t0.Add(10*time.Minute)); st {
		case nsset.StatusTimeout:
			timeouts++
		case nsset.StatusServFail:
			servfails++
		}
	}
	if servfails == 0 {
		t.Error("app overload should produce some SERVFAILs")
	}
	// the paper's failure split is ≈92% timeout / 8% servfail
	share := float64(servfails) / float64(servfails+timeouts)
	if share > 0.2 {
		t.Errorf("servfail share = %.2f, want small", share)
	}
}

func BenchmarkQueryQuiet(b *testing.B) {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	id, err := db.AddNameserver(dnsdb.Nameserver{
		Addr: 0x0a0a0a0a, Provider: pid, CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	db.Freeze()
	n := New(DefaultParams(), db, attacksim.NewSchedule(nil))
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Query(rng, id, t0)
	}
}

func BenchmarkQueryUnderAttack(b *testing.B) {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	id, err := db.AddNameserver(dnsdb.Nameserver{
		Addr: 0x0a0a0a0a, Provider: pid, CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	db.Freeze()
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(0x0a0a0a0a, t0, time.Hour, 1.5e5, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), db, sched)
	rng := rand.New(rand.NewPCG(2, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Query(rng, id, t0.Add(10*time.Minute))
	}
}
