package simnet

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/nsset"
)

// failRate measures the empirical failure probability under a given attack
// rate against the fixture's unicast nameserver.
func failRate(t *testing.T, f *fixture, pps float64) float64 {
	t.Helper()
	var sched *attacksim.Schedule
	if pps > 0 {
		sched = attacksim.NewSchedule([]attacksim.Spec{
			attack(f.uniAddr, t0, time.Hour, pps, 53, attacksim.VectorRandomSpoofed),
		})
	} else {
		sched = attacksim.NewSchedule(nil)
	}
	n := New(DefaultParams(), f.db, sched)
	rng := rand.New(rand.NewPCG(uint64(pps)+1, 17))
	fails := 0
	const trials = 800
	for i := 0; i < trials; i++ {
		if st, _ := n.Query(rng, f.uni, t0.Add(10*time.Minute)); st != nsset.StatusOK {
			fails++
		}
	}
	return float64(fails) / trials
}

// TestFailureMonotoneInLoad: more attack traffic never helps the victim.
func TestFailureMonotoneInLoad(t *testing.T) {
	f := newFixture(t)
	rates := []float64{0, 5e4, 9e4, 1.5e5, 3e5, 1e6}
	prev := -0.05
	for _, pps := range rates {
		fr := failRate(t, f, pps)
		if fr < prev-0.05 { // statistical slack
			t.Errorf("failure rate decreased with load: %.3f at %.0f pps (prev %.3f)", fr, pps, prev)
		}
		if fr > prev {
			prev = fr
		}
	}
	if last := failRate(t, f, 1e6); last < 0.5 {
		t.Errorf("10x overload only fails %.2f of queries", last)
	}
}

// TestRTTMonotoneInUtilization: the congestion curve itself is monotone.
func TestRTTMonotoneInUtilization(t *testing.T) {
	f := newFixture(t)
	mkNet := func(pps float64) *Net {
		return New(DefaultParams(), f.db, attacksim.NewSchedule([]attacksim.Spec{
			attack(f.uniAddr, t0, time.Hour, pps, 53, attacksim.VectorRandomSpoofed),
		}))
	}
	prevUtil := -1.0
	for _, pps := range []float64{1e4, 5e4, 8e4, 9.5e4, 1.2e5, 5e5} {
		u := mkNet(pps).LoadStateAt(f.uni, t0.Add(10*time.Minute)).Utilization()
		if u <= prevUtil {
			t.Errorf("utilization not increasing: %.3f at %.0f pps", u, pps)
		}
		prevUtil = u
	}
}

// TestQueryNeverPanicsOnRandomTimes: the data plane is total over the whole
// study window, before, and after.
func TestQueryNeverPanicsOnRandomTimes(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 2e5, 53, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	check := func(seed uint64, offsetHours int16, nsPick bool) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		id := f.uni
		if nsPick {
			id = f.any
		}
		tm := t0.Add(time.Duration(offsetHours) * time.Hour)
		st, rtt := n.Query(rng, id, tm)
		if st == nsset.StatusOK {
			return rtt > 0
		}
		return rtt == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLoadStateDeterministic: the load model is a pure function of
// (nameserver, time).
func TestLoadStateDeterministic(t *testing.T) {
	f := newFixture(t)
	sched := attacksim.NewSchedule([]attacksim.Spec{
		attack(f.uniAddr, t0, time.Hour, 1.3e5, 53, attacksim.VectorRandomSpoofed),
		attack(f.uniAddr.Slash24().Nth(77), t0, 2*time.Hour, 9e4, 80, attacksim.VectorRandomSpoofed),
	})
	n := New(DefaultParams(), f.db, sched)
	for i := 0; i < 50; i++ {
		tm := t0.Add(time.Duration(i) * 7 * time.Minute)
		a := n.LoadStateAt(f.uni, tm)
		b := n.LoadStateAt(f.uni, tm)
		if a != b {
			t.Fatalf("load state not deterministic at %v: %+v vs %+v", tm, a, b)
		}
	}
}
