// Package simnet is the simulated data plane between the measurement
// vantage point and the authoritative nameservers. It converts the attack
// schedule into per-query outcomes: the round-trip time of a successful
// query, a drop (resolver-side timeout), or a SERVFAIL from an overloaded
// server.
//
// The model captures the mechanisms the paper reasons about:
//
//   - Queueing congestion: utilization ρ of the server's uplink drives an
//     M/M/1-style RTT inflation base×(1 + ρ/(1-ρ)) and, past saturation,
//     drops with probability 1−1/ρ.
//   - Shared /24 infrastructure: attacks on *other* hosts in a nameserver's
//     /24 partially load the nameserver's upstream (the mil.ru bottleneck,
//     §5.2.3).
//   - Anycast: attack traffic spreads across a server's sites, dividing the
//     per-site load (§6.6.1); the vantage point reaches one site.
//   - Application-aware attacks: port-53 floods stress the DNS software as
//     well as the link, making resolution failure (and SERVFAIL) more
//     likely — the §6.3.1 port-skew of successful attacks.
//   - Scrubbing: providers with DDoS protection shed most attack load after
//     a deployment delay and recover immediately when the attack ends;
//     unprotected providers keep a decaying residual impairment (the
//     8-hour tail of the December TransIP attack, §5.1).
//   - Invisible vectors: reflection/direct components load the victim but
//     produce no telescope backscatter — one cause of the weak
//     intensity/impact correlation (§6.4).
package simnet

import (
	"math"
	"math/rand/v2"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// Params are the data-plane model constants. Zero value is unusable; use
// DefaultParams.
type Params struct {
	// Slash24Coupling is the fraction of a same-/24 neighbor's attack
	// load that spills onto a nameserver's upstream.
	Slash24Coupling float64
	// AppPortWeight is the extra server-side weight of attacks on port
	// 53 relative to pure link floods.
	AppPortWeight float64
	// LinkPortWeight is the weight of non-DNS-port floods.
	LinkPortWeight float64
	// ScrubDelay is how long a scrubbing provider needs to engage
	// mitigation after an attack starts.
	ScrubDelay time.Duration
	// ScrubEfficiency is the fraction of attack load removed once
	// scrubbing is engaged.
	ScrubEfficiency float64
	// RecoveryTau is the residual-impairment decay constant after an
	// attack ends for providers without scrubbing.
	RecoveryTau time.Duration
	// ScrubbedRecoveryTau is the decay constant with scrubbing.
	ScrubbedRecoveryTau time.Duration
	// MaxRTTInflation caps the congestion multiplier.
	MaxRTTInflation float64
	// JitterSigma is the lognormal sigma of per-query RTT noise.
	JitterSigma float64
	// BaseDropProb is the floor packet-loss probability.
	BaseDropProb float64
	// ServFailShare is the probability that a failed query on an
	// app-overloaded server surfaces as SERVFAIL rather than a timeout
	// (the paper sees 92% timeout / 8% SERVFAIL, §6.3.1).
	ServFailShare float64
	// QueryTimeout is the resolver's per-query timeout; inflated RTTs
	// beyond it count as timeouts.
	QueryTimeout time.Duration
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		Slash24Coupling:     0.7,
		AppPortWeight:       1.0,
		LinkPortWeight:      0.55,
		ScrubDelay:          20 * time.Minute,
		ScrubEfficiency:     0.85,
		RecoveryTau:         3 * time.Hour,
		ScrubbedRecoveryTau: 5 * time.Minute,
		MaxRTTInflation:     200,
		JitterSigma:         0.08,
		BaseDropProb:        0.0005,
		ServFailShare:       0.08,
		QueryTimeout:        5 * time.Second,
	}
}

// Blackout marks a period during which nameservers inside a prefix are
// unreachable from the vantage point regardless of load — the model for
// operator geofencing, as when mil.ru was restricted to Russian sources
// during the March 2022 attacks (§5.2.1).
type Blackout struct {
	Prefix netx.Prefix
	From   time.Time
	To     time.Time
}

// Covers reports whether the blackout applies to addr at time t.
func (b Blackout) Covers(addr netx.Addr, t time.Time) bool {
	return b.Prefix.Contains(addr) && !t.Before(b.From) && t.Before(b.To)
}

// Net is the data plane. It is immutable after New and safe for concurrent
// readers (per-query randomness comes from the caller's rng).
type Net struct {
	params Params
	db     *dnsdb.DB
	// specsByAddr indexes attack components by victim address.
	specsByAddr map[netx.Addr][]attacksim.Spec
	// specsBySlash24 indexes attack components by victim /24.
	specsBySlash24 map[netx.Prefix][]attacksim.Spec
	blackouts      []Blackout
	// vantage is the measurement location this view queries from; see
	// WithVantage.
	vantage Vantage
}

// New builds the data plane for a world and attack schedule. Optional
// blackouts model geofencing events.
func New(params Params, db *dnsdb.DB, sched *attacksim.Schedule, blackouts ...Blackout) *Net {
	n := &Net{
		params:         params,
		db:             db,
		specsByAddr:    make(map[netx.Addr][]attacksim.Spec),
		specsBySlash24: make(map[netx.Prefix][]attacksim.Spec),
		blackouts:      blackouts,
		vantage:        DefaultVantage(),
	}
	if sched != nil {
		for _, s := range sched.Specs() {
			n.specsByAddr[s.Target] = append(n.specsByAddr[s.Target], s)
			k := s.Target.Slash24()
			n.specsBySlash24[k] = append(n.specsBySlash24[k], s)
		}
	}
	return n
}

// portWeight returns the server-side weight of an attack component based on
// whether it targets the DNS service port.
func (n *Net) portWeight(s *attacksim.Spec) float64 {
	for _, p := range s.Ports {
		if p == 53 {
			return n.params.AppPortWeight
		}
	}
	if len(s.Ports) == 0 { // ICMP flood: link stress only
		return n.params.LinkPortWeight
	}
	return n.params.LinkPortWeight
}

// scrubFactor returns the fraction of attack load that still reaches the
// victim given the provider's scrubbing state at time t.
func (n *Net) scrubFactor(scrubbing bool, s *attacksim.Spec, t time.Time) float64 {
	if !scrubbing {
		return 1
	}
	if t.Before(s.Start.Add(n.params.ScrubDelay)) {
		return 1
	}
	return 1 - n.params.ScrubEfficiency
}

// LoadState summarizes the attack-induced state of a nameserver at one
// instant.
type LoadState struct {
	// LinkUtil is uplink utilization (all vectors, all ports).
	LinkUtil float64
	// AppUtil is DNS-application utilization (port-53 components).
	AppUtil float64
	// Residual is decayed post-attack impairment, in utilization units.
	Residual float64
}

// Utilization returns the effective congestion utilization driving RTT
// inflation and loss.
func (ls LoadState) Utilization() float64 {
	u := ls.LinkUtil
	if ls.Residual > u {
		u = ls.Residual
	}
	return u
}

// loadAt computes the LoadState of nameserver ns at time t.
func (n *Net) loadAt(ns *dnsdb.Nameserver, provider *dnsdb.Provider, t time.Time) LoadState {
	w := clock.WindowOf(t)
	var ls LoadState
	// anycast spreads attack load across sites, but not evenly: the
	// vantage's catchment site carries its own share (§4.3 limitation 4)
	sites := float64(ns.Sites)
	if sites < 1 {
		sites = 1
	}
	siteFactor := siteLoadFactor(ns, n.siteOf(ns))
	sites /= siteFactor
	cap := ns.CapacityPPS
	if cap <= 0 {
		cap = 1
	}
	add := func(s *attacksim.Spec, coupling float64) {
		load := s.WindowLoad(w)
		if load > 0 {
			load *= n.scrubFactor(provider.ScrubbingAt(t), s, t) * coupling / sites
			ls.LinkUtil += load * n.portWeight(s) / cap
			if n.portWeight(s) >= n.params.AppPortWeight {
				ls.AppUtil += load / cap
			}
			return
		}
		// residual impairment after the attack ends
		if !s.End.After(t) {
			tau := n.params.RecoveryTau
			if provider.ScrubbingAt(s.End) {
				tau = n.params.ScrubbedRecoveryTau
			}
			age := t.Sub(s.End)
			if age > 8*tau {
				return
			}
			endW := clock.WindowOf(s.End.Add(-time.Nanosecond))
			peak := s.WindowLoad(endW) * n.scrubFactor(provider.ScrubbingAt(s.End), s, s.End) * coupling / sites
			res := peak / cap * math.Exp(-float64(age)/float64(tau))
			// residual impairment can keep a server effectively down
			// for hours after the flood stops (the RDZ railways
			// recovery the morning after, §5.2.2); cap only to keep
			// the decay arithmetic sane
			if res > 50 {
				res = 50
			}
			if res > ls.Residual {
				ls.Residual = res
			}
		}
	}
	for i := range n.specsByAddr[ns.Addr] {
		add(&n.specsByAddr[ns.Addr][i], 1)
	}
	if n.params.Slash24Coupling > 0 {
		for i := range n.specsBySlash24[ns.Addr.Slash24()] {
			s := &n.specsBySlash24[ns.Addr.Slash24()][i]
			if s.Target != ns.Addr {
				add(s, n.params.Slash24Coupling)
			}
		}
	}
	return ls
}

// LoadStateAt exposes the load model for diagnostics and tests.
func (n *Net) LoadStateAt(id dnsdb.NameserverID, t time.Time) LoadState {
	ns := &n.db.Nameservers[id]
	p := n.db.Providers[ns.Provider]
	return n.loadAt(ns, &p, t)
}

// Query simulates one DNS query from the vantage point to nameserver id at
// time t, returning the outcome status and, for StatusOK, the RTT.
func (n *Net) Query(rng *rand.Rand, id dnsdb.NameserverID, t time.Time) (nsset.QueryStatus, time.Duration) {
	ns := &n.db.Nameservers[id]
	for _, b := range n.blackouts {
		if b.Covers(ns.Addr, t) {
			return nsset.StatusTimeout, 0
		}
	}
	p := n.db.Providers[ns.Provider]
	ls := n.loadAt(ns, &p, t)
	u := ls.Utilization()

	// loss from saturation
	drop := n.params.BaseDropProb
	switch {
	case u >= 1:
		drop = 1 - 1/u
		if drop < 0.5 {
			drop = 0.5 // saturated servers shed at least half the queries
		}
	case u > 0.85:
		drop += (u - 0.85) / 0.15 * 0.25
	}
	if rng.Float64() < drop {
		// an app-overloaded server may emit SERVFAIL instead of
		// silently dropping
		if ls.AppUtil > 0.8 && rng.Float64() < n.params.ServFailShare {
			return nsset.StatusServFail, 0
		}
		return nsset.StatusTimeout, 0
	}

	// congestion-inflated RTT. Below the knee the M/M/1 waiting-time
	// factor applies; past it, admission drops (above) shed load and the
	// surviving queries see a linear overload ramp — saturated servers
	// still answer a thinned stream, just slowly.
	inflation := 1.0
	switch {
	case u <= 0:
	case u < 0.9:
		inflation = 1 + u/(1-u)
	default:
		inflation = 10 + (u-0.9)*50
	}
	if inflation > n.params.MaxRTTInflation {
		inflation = n.params.MaxRTTInflation
	}
	jitter := math.Exp(n.params.JitterSigma * rng.NormFloat64())
	rtt := time.Duration(float64(n.baseRTTFrom(ns)) * inflation * jitter)
	if rtt >= n.params.QueryTimeout {
		return nsset.StatusTimeout, 0
	}
	return nsset.StatusOK, rtt
}

// Params returns the model constants in use.
func (n *Net) Params() Params { return n.params }

// DB returns the world the net serves.
func (n *Net) DB() *dnsdb.DB { return n.db }
