package simnet

import (
	"time"

	"dnsddos/internal/dnsdb"
)

// Vantage describes a measurement location. The paper's platforms measure
// from a single vantage point in the Netherlands, which it lists as a
// limitation (§4.3): with anycast, each vantage reaches exactly one site,
// and an attack concentrated on other sites is invisible from it
// ("catchment can mask ongoing attacks in specific geographic regions").
// §9 proposes multi-vantage measurement as future work; this type
// implements it.
type Vantage struct {
	// Name labels the vantage in reports.
	Name string
	// RTTScale multiplies nameserver base RTTs (the world generator
	// calibrates base RTTs for the Netherlands vantage; a US vantage
	// sees different distances).
	RTTScale float64
	// CatchmentSeed selects which anycast site each nameserver's
	// queries from this vantage land on.
	CatchmentSeed uint64
}

// DefaultVantage is the Netherlands vantage the paper's platforms use.
func DefaultVantage() Vantage {
	return Vantage{Name: "nl-ams", RTTScale: 1, CatchmentSeed: 0}
}

// WithVantage returns a view of the data plane as seen from v. The
// returned Net shares all immutable state with the original.
func (n *Net) WithVantage(v Vantage) *Net {
	cp := *n
	if v.RTTScale <= 0 {
		v.RTTScale = 1
	}
	cp.vantage = v
	return &cp
}

// Vantage returns the active vantage.
func (n *Net) Vantage() Vantage { return n.vantage }

// siteOf returns the anycast site index this vantage's catchment maps to
// for nameserver ns.
func (n *Net) siteOf(ns *dnsdb.Nameserver) int {
	if ns.Sites <= 1 {
		return 0
	}
	h := mix64(uint64(ns.Addr)*0x9e3779b97f4a7c15 ^ n.vantage.CatchmentSeed*0xbf58476d1ce4e5b9)
	return int(h % uint64(ns.Sites))
}

// siteLoadFactor returns the relative attack-load multiplier of one site of
// an anycast deployment. Attack sources have their own catchment, so load
// is uneven across sites: some absorb several times their even share,
// others almost none. The factor is deterministic per (nameserver, site)
// with mean ≈1 across sites.
func siteLoadFactor(ns *dnsdb.Nameserver, site int) float64 {
	if ns.Sites <= 1 {
		return 1
	}
	u := float64(mix64(uint64(ns.Addr)<<20^uint64(site)*0x2545f4914f6cdd1d)%1000) / 1000
	// triangular-ish spread in [0.1, 1.9]
	return 0.1 + 1.8*u
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// baseRTTFrom returns the unloaded RTT from the active vantage to ns.
func (n *Net) baseRTTFrom(ns *dnsdb.Nameserver) time.Duration {
	scale := n.vantage.RTTScale
	if scale <= 0 {
		scale = 1
	}
	if ns.Sites > 1 {
		// anycast reaches a nearby site from anywhere: distance is a
		// property of the deployment, not the vantage geography
		scale = 1
	}
	return time.Duration(float64(ns.BaseRTT) * scale)
}
