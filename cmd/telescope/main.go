// Command telescope runs the RSDoS inference over a pcap capture of darknet
// traffic (as written by cmd/attacksim or any LINKTYPE_RAW pcap) and writes
// the inferred attack feed as CSV — the packet-level path of the pipeline,
// equivalent to CAIDA curating raw UCSD-NT data into the RSDoS feed.
//
// Usage:
//
//	telescope -in capture.pcap [-out feed.csv] [-min-packets N] [-min-slash16 N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dnsddos/internal/packet"
	"dnsddos/internal/pcap"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/telescope"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("telescope: ")
	in := flag.String("in", "", "input pcap file (required)")
	out := flag.String("out", "", "output feed CSV (default stdout)")
	cfg := rsdos.DefaultConfig()
	flag.Int64Var(&cfg.MinPackets, "min-packets", cfg.MinPackets, "min backscatter packets per window")
	flag.IntVar(&cfg.MinSlash16, "min-slash16", cfg.MinSlash16, "min /16 spread per window")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	tel := telescope.NewUCSD()
	agg := rsdos.NewPacketAggregator(tel)
	var n, bad int64
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("reading %s: %v", *in, err)
		}
		p, err := packet.Decode(rec.Data)
		if err != nil {
			bad++
			continue
		}
		agg.Add(rec.Time, p)
		n++
	}
	attacks := rsdos.Infer(cfg, agg.Finish())
	fmt.Fprintf(os.Stderr, "telescope: %d packets (%d undecodable), %d inferred attacks\n", n, bad, len(attacks))

	w := io.Writer(os.Stdout)
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := rsdos.WriteFeed(w, attacks); err != nil {
		log.Fatalf("writing feed: %v", err)
	}
}
