// Command streamjoin runs the live counterpart of cmd/joinpipe: it
// builds the study world and measurement-side indexes (without the batch
// join), replays a deterministic telescope packet trace from the study's
// own attack schedule, and streams it through internal/stream — closing
// 5-minute RSDoS windows as the watermark passes, finalizing attacks
// incrementally and joining them the moment they can no longer change.
// Joined impact events are appended to the output CSV batch by batch,
// with bounded lag, instead of at end of run.
//
// With -journal the emission frontier is checkpointed after every
// accepted batch; -journal with -resume restarts a killed run with
// exactly-once delivery — the output file is truncated to the journaled
// byte offset and the replay re-emits nothing the file already holds.
//
// Usage:
//
// With -max-backlog the overload tier engages (DESIGN §3.7): closed
// windows queue behind a bounded backlog whose depth drives the
// degradation ladder, -spill-dir moves the backlog tail to disk past a
// high-water mark, and -shed-policy opts in to the lossy rungs (shed
// late packets, then sample). Offers the pipeline refuses are counted
// and reported in the final summary, never silently swallowed.
//
// Usage:
//
//	streamjoin [-quick] [-domains N] [-attacks N] [-from-day D] [-days N]
//	           [-lateness W] [-jitter W] [-rate F] [-seed N] [-out FILE]
//	           [-journal DIR] [-resume] [-metrics-addr :9090]
//	           [-max-backlog N] [-spill-dir DIR] [-high-water N]
//	           [-shed-policy none|late|sample] [-admit-rate F] [-drain-every N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/obs"
	"dnsddos/internal/packet"
	"dnsddos/internal/report"
	"dnsddos/internal/stream"
	"dnsddos/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamjoin: ")
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted (the journal frontier is durable; rerun with -resume)")
		}
		log.Fatal(err)
	}
}

func run() error {
	quick := flag.Bool("quick", true, "use the scaled-down quick configuration")
	domains := flag.Int("domains", 0, "override world size")
	attacks := flag.Int("attacks", 0, "override attack count")
	fromDay := flag.Int("from-day", 29, "first study day the trace replays")
	days := flag.Int("days", 1, "number of days to replay")
	lateness := flag.Int("lateness", 1, "watermark lateness allowance in 5-minute windows")
	jitter := flag.Int("jitter", 0, "arrival-order jitter of the replayed trace, in windows")
	rate := flag.Float64("rate", 0.003, "flood downsampling rate of the trace (1 = every packet)")
	seed := flag.Uint64("seed", 99, "trace seed (packets, spoofed sources, responses)")
	out := flag.String("out", "", "output CSV file, appended batch by batch (default stdout)")
	journalDir := flag.String("journal", "", "journal directory: checkpoint the emission frontier per batch")
	resume := flag.Bool("resume", false, "resume from the journal in -journal with exactly-once emission")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics.json with live stream lag/backlog/drop gauges (empty disables)")
	maxBacklog := flag.Int("max-backlog", 0, "overload: bound on queued closed-window batches; at the bound intake pauses (0 = unbounded, tier off)")
	spillDir := flag.String("spill-dir", "", "overload: directory for the backlog spill file (batches past -high-water go to disk)")
	highWater := flag.Int("high-water", 64, "overload: in-memory batches kept before spilling (needs -spill-dir)")
	shedPolicy := flag.String("shed-policy", "none", "overload shedding ladder: none, late, or sample")
	admitRate := flag.Float64("admit-rate", 0, "overload: token-bucket admission bound in packets per second of stream time (0 = unlimited)")
	drainEvery := flag.Int("drain-every", 0, "overload: join one queued batch every N offers (<= 1 drains fully per offer)")
	flag.Parse()

	if *resume && *journalDir == "" {
		return fmt.Errorf("-resume requires -journal DIR")
	}
	if *resume && *out == "" {
		return fmt.Errorf("-resume requires -out FILE (stdout cannot be truncated to the journaled offset)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := study.DefaultConfig()
	if *quick {
		cfg = study.QuickConfig()
	}
	if *domains > 0 {
		cfg.World.Domains = *domains
	}
	if *attacks > 0 {
		cfg.Attacks.TotalAttacks = *attacks
	}
	// sweep one day before the trace (prev-day snapshots and baselines)
	// and the trace days themselves
	traceFrom := clock.Day(*fromDay)
	traceTo := traceFrom + clock.Day(*days) - 1
	cfg.FromDay, cfg.ToDay = traceFrom-1, traceTo

	reg := obs.New()
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "streamjoin: observability on http://%s/metrics.json\n", ms.Addr())
	}

	start := time.Now()
	s, err := study.RunContext(ctx, cfg, study.WithSkipJoin(), study.WithMetrics(reg))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamjoin: world and measurement sweeps ready (%.1fs), streaming days %d..%d\n",
		time.Since(start).Seconds(), int(traceFrom), int(traceTo))

	opts := []stream.Option{
		stream.WithContext(ctx),
		stream.WithRSDoS(cfg.RSDoS),
		stream.WithLateness(*lateness),
		stream.WithMetrics(reg),
	}
	policy, err := stream.ParseShedPolicy(*shedPolicy)
	if err != nil {
		return err
	}
	overloaded := *maxBacklog > 0 || *spillDir != "" || *admitRate > 0 || policy != stream.ShedNone
	if overloaded {
		ov := stream.Overload{
			MaxBacklog: *maxBacklog,
			SpillDir:   *spillDir,
			Policy:     policy,
			AdmitRate:  *admitRate,
			DrainEvery: *drainEvery,
		}
		if *spillDir != "" {
			ov.HighWater = *highWater
		}
		opts = append(opts, stream.WithOverload(ov))
	}
	if *journalDir != "" {
		hash, err := study.ConfigHash(cfg)
		if err != nil {
			return err
		}
		// the journal is keyed by everything that determines the emitted
		// byte sequence: the study config hash plus the trace seed
		hdr := checkpoint.Header{ConfigHash: hash, Seed: *seed}
		var dir *checkpoint.Dir
		if *resume {
			dir, err = checkpoint.Resume(*journalDir, hdr)
		} else {
			dir, err = checkpoint.Create(*journalDir, hdr)
		}
		if err != nil {
			return err
		}
		opts = append(opts, stream.WithJournal(dir))
		if *resume {
			opts = append(opts, stream.WithResume())
		}
	}

	sink, err := newCSVSink(*out)
	if err != nil {
		return err
	}
	defer sink.close()

	p, err := stream.New(s.Telescope, s.Pipeline, sink, opts...)
	if err != nil {
		return err
	}
	if cur, ok := p.Resumed(); ok {
		if err := sink.truncateTo(cur.SinkBytes); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "streamjoin: resuming past window %d (%d attacks, %d events already delivered)\n",
			int64(cur.ClosedThrough), cur.Attacks, cur.Events)
	} else if err := sink.writeHeader(); err != nil {
		return err
	}

	traceCfg := stream.TraceConfig{
		Seed:          *seed,
		Rate:          *rate,
		From:          traceFrom.FirstWindow(),
		To:            (traceTo + 1).FirstWindow() - 1,
		JitterWindows: *jitter,
	}
	var packets, rejected, paused int64
	var streamErr error
	stream.Replay(traceCfg, s.Schedule.Sched, s.Telescope, func(ts time.Time, pkt packet.Packet) bool {
		if ctx.Err() != nil {
			streamErr = ctx.Err()
			return false
		}
		packets++
		ok, err := p.Offer(ts, pkt)
		if errors.Is(err, stream.ErrBackpressure) {
			// intake is pausing at the backlog bound; the replay has no way
			// to slow the source, so the packet is counted and dropped —
			// draining continues on the next offer
			paused++
			return true
		}
		if err != nil {
			streamErr = err
			return false
		}
		if !ok {
			rejected++
		}
		return true
	})
	if streamErr != nil {
		// Terminated (or wedged) mid-stream: flush and close the sink
		// *now*, with errors propagated, before reporting the journal
		// frontier as resumable — the deferred close would swallow a
		// failure and leave the journaled SinkBytes offset pointing past
		// what the file durably holds.
		if err := sink.shutdown(); err != nil {
			return fmt.Errorf("closing sink after interrupt: %w (stream stopped: %v)", err, streamErr)
		}
		if ct, ok := p.ClosedThrough(); ok {
			fmt.Fprintf(os.Stderr, "streamjoin: sink flushed and closed at durable frontier window %d (offset %d)\n",
				int64(ct), sink.Offset())
		}
		return streamErr
	}
	if err := p.Close(); err != nil {
		return err
	}
	if err := sink.close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"streamjoin: %d packets streamed, %d batches, %d attacks, %d events, %d late drops (%.1fs)\n",
		packets, sink.batches, sink.attacks, sink.events, p.LateDrops(), time.Since(start).Seconds())
	if overloaded {
		st := p.Overload()
		fmt.Fprintf(os.Stderr,
			"streamjoin: overload: %d offers rejected (%d admit-denied, %d shed late, %d sampled out, %d paused), %d batches spilled, peak backlog %d in memory\n",
			rejected+paused, st.AdmitDenied, st.ShedLate, st.SampledOut, st.Paused, st.SpilledBatches, st.MaxMemBatches)
	}
	return nil
}

// csvSink appends joined events to the output batch by batch and tracks
// the byte offset after each accepted batch — the stream journals it so
// a resumed run can truncate a torn write from a crash.
type csvSink struct {
	f       *os.File // nil when writing to stdout
	off     int64
	batches int
	attacks int
	events  int64
}

func newCSVSink(path string) (*csvSink, error) {
	if path == "" {
		return &csvSink{}, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &csvSink{f: f}, nil
}

func (s *csvSink) writeHeader() error {
	if s.f == nil {
		return report.EventsCSVHeader(os.Stdout)
	}
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return err
	}
	if err := report.EventsCSVHeader(s.f); err != nil {
		return err
	}
	return s.sync()
}

// truncateTo discards everything past the journaled offset — a batch the
// sink half-wrote when the previous run died was never journaled and
// will be re-emitted.
func (s *csvSink) truncateTo(off int64) error {
	if s.f == nil {
		return fmt.Errorf("streamjoin: resume needs a file sink")
	}
	if err := s.f.Truncate(off); err != nil {
		return err
	}
	if _, err := s.f.Seek(off, 0); err != nil {
		return err
	}
	s.off = off
	return nil
}

func (s *csvSink) Emit(b stream.Batch) error {
	w := os.Stdout
	if s.f != nil {
		w = s.f
	}
	if err := report.EventsCSVRows(w, b.Events); err != nil {
		return err
	}
	if err := s.sync(); err != nil {
		return err
	}
	s.batches++
	s.attacks += len(b.Attacks)
	s.events += int64(len(b.Events))
	return nil
}

// Offset implements stream.OffsetSink: the durable size after the last
// accepted batch.
func (s *csvSink) Offset() int64 { return s.off }

func (s *csvSink) sync() error {
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	off, err := s.f.Seek(0, 1)
	if err != nil {
		return err
	}
	s.off = off
	return nil
}

// shutdown is the signal-path teardown: sync whatever the last Emit
// left buffered, then close, propagating the first failure. Ordered
// before the run reports its journal frontier so the cursor never
// claims bytes the sink has not durably written.
func (s *csvSink) shutdown() error {
	if s.f == nil {
		return nil
	}
	if err := s.sync(); err != nil {
		s.close()
		return err
	}
	return s.close()
}

func (s *csvSink) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
