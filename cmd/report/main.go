// Command report runs the full study and prints every table and figure of
// the paper's evaluation — the one-shot reproduction report.
//
// The run is supervised like cmd/joinpipe: SIGINT/SIGTERM cancel it
// cleanly, and -checkpoint/-resume restart a killed run from the last
// completed day-sweep.
//
// Usage:
//
//	report [-quick] [-domains N] [-attacks N] [-outdir DIR] [-config FILE]
//	       [-checkpoint DIR] [-resume] [-metrics-addr :9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	domains := flag.Int("domains", 0, "override world size")
	attacks := flag.Int("attacks", 0, "override attack count")
	outdir := flag.String("outdir", "", "also write each table/figure to CSV files in this directory")
	configPath := flag.String("config", "", "JSON study configuration (overrides -quick)")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: persist each completed day-sweep")
	resume := flag.Bool("resume", false, "resume from the checkpoints in -checkpoint instead of day 0")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics.json, /debug/vars and /debug/pprof/ on this address while the run is in flight (empty disables)")
	daystoreDir := flag.String("daystore", "", "seal completed day-sweeps to columnar files in this directory and join against the mmap-backed views (out-of-core: resident memory stays flat in the world size)")
	flag.Parse()

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := study.DefaultConfig()
	if *quick {
		cfg = study.QuickConfig()
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		cfg, err = study.ReadConfig(f, cfg)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *domains > 0 {
		cfg.World.Domains = *domains
	}
	if *attacks > 0 {
		cfg.Attacks.TotalAttacks = *attacks
	}

	reg := obs.New()
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "report: observability on http://%s/metrics.json\n", ms.Addr())
	}

	start := time.Now()
	runOpts := []study.Option{
		study.WithCheckpointDir(*ckptDir),
		study.WithResume(*resume),
		study.WithMetrics(reg),
	}
	if *daystoreDir != "" {
		runOpts = append(runOpts, study.WithDayStoreDir(*daystoreDir))
	}
	s, err := study.RunContext(ctx, cfg, runOpts...)
	if err != nil {
		return err
	}
	fmt.Printf("study: %d domains, %d inferred attacks, %d joined events (%.1fs)\n\n",
		len(s.World.DB.Domains), len(s.Attacks), len(s.Events), time.Since(start).Seconds())
	if len(s.Report.SkippedDays) > 0 {
		rows := make([]report.SkippedDayRow, len(s.Report.SkippedDays))
		for i, sd := range s.Report.SkippedDays {
			rows[i] = report.SkippedDayRow{Day: sd.Day, Reason: sd.Reason, Attempts: sd.Attempts}
		}
		report.SkippedDays(os.Stderr, rows)
	}

	out := os.Stdout
	report.Table1(out, core.SummarizeDataset(s.Attacks, s.World.Topo))
	fmt.Println()
	report.Table3(out, core.MonthlySummary(s.Classified))
	fmt.Println()
	report.Table4(out, core.TopASNs(s.Classified, s.World.Topo, 10))
	fmt.Println()
	report.Table5(out, s.Pipeline.TopIPs(s.Classified, 10))
	fmt.Println()
	report.Table6(out, core.MostAffected(s.Events, 10))
	fmt.Println()

	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.TransIPNS[:])
	report.Figure2(out, "TransIP December 2020",
		s.Pipeline.SeriesFor(k, cs.TransIPDecStart.Add(-2*time.Hour), cs.TransIPDecEnd.Add(10*time.Hour)))
	fmt.Println()
	report.Figure3(out, "TransIP March 2021",
		s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-2*time.Hour), cs.TransIPMarEnd.Add(6*time.Hour)))
	fmt.Println()
	report.Figure5(out, s.Pipeline.MonthlyAffectedDomains(s.Classified))
	fmt.Println()
	report.Figure6(out, core.PortDistribution(s.Classified, nil))
	fmt.Println()
	report.Scatter(out, "Figure 7: failure rate vs hosted domains", "hosted_domains", "failure_pct", core.FailureScatter(s.Events))
	fmt.Println()
	report.FailureBreakdown(out, core.BreakdownFailures(s.Events))
	fmt.Println()
	report.Scatter(out, "Figure 8: RTT impact vs hosted domains", "hosted_domains", "impact_x", core.ImpactScatter(s.Events))
	fmt.Println()
	report.Correlation(out, "Figure 9: RTT impact vs telescope intensity", core.IntensityCorrelation(s.Events))
	fmt.Println()
	report.Correlation(out, "Figure 10: RTT impact vs attack duration", core.DurationCorrelation(s.Events))
	report.DurationModes(out, core.DurationHistogram(s.Classified, 180))
	fmt.Println()
	report.Groups(out, "Figure 11: impact by anycast class", core.ImpactByAnycast(s.Events))
	fmt.Println()
	report.Groups(out, "Figure 12: impact by AS diversity", core.ImpactByASDiversity(s.Events))
	fmt.Println()
	report.Groups(out, "Figure 13: impact by /24 prefix diversity", core.ImpactByPrefixDiversity(s.Events))

	if *outdir != "" {
		if err := exportCSVs(*outdir, s); err != nil {
			return err
		}
		fmt.Printf("\nwrote per-figure CSVs to %s\n", *outdir)
	}
	return nil
}

// exportCSVs writes each figure's data series to its own file for external
// plotting.
func exportCSVs(dir string, s *study.Study) error {
	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.TransIPNS[:])
	var firstErr error
	write := func(name string, f func(w io.Writer)) {
		if firstErr != nil {
			return
		}
		out, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			firstErr = err
			return
		}
		f(out)
		if err := out.Close(); err != nil {
			firstErr = err
		}
	}
	write("table1.txt", func(w io.Writer) { report.Table1(w, core.SummarizeDataset(s.Attacks, s.World.Topo)) })
	write("table3.txt", func(w io.Writer) { report.Table3(w, core.MonthlySummary(s.Classified)) })
	write("table4.txt", func(w io.Writer) { report.Table4(w, core.TopASNs(s.Classified, s.World.Topo, 10)) })
	write("table5.txt", func(w io.Writer) { report.Table5(w, s.Pipeline.TopIPs(s.Classified, 10)) })
	write("table6.txt", func(w io.Writer) { report.Table6(w, core.MostAffected(s.Events, 10)) })
	write("figure2_dec.csv", func(w io.Writer) {
		report.Figure2(w, "TransIP December 2020", s.Pipeline.SeriesFor(k, cs.TransIPDecStart.Add(-2*time.Hour), cs.TransIPDecEnd.Add(10*time.Hour)))
	})
	write("figure2_mar.csv", func(w io.Writer) {
		report.Figure2(w, "TransIP March 2021", s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-2*time.Hour), cs.TransIPMarEnd.Add(10*time.Hour)))
	})
	write("figure3.csv", func(w io.Writer) {
		report.Figure3(w, "TransIP March 2021", s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-2*time.Hour), cs.TransIPMarEnd.Add(6*time.Hour)))
	})
	write("figure5.csv", func(w io.Writer) { report.Figure5(w, s.Pipeline.MonthlyAffectedDomains(s.Classified)) })
	write("figure6.csv", func(w io.Writer) { report.Figure6(w, core.PortDistribution(s.Classified, nil)) })
	write("figure7.csv", func(w io.Writer) {
		report.Scatter(w, "Figure 7", "hosted_domains", "failure_pct", core.FailureScatter(s.Events))
	})
	write("figure8.csv", func(w io.Writer) {
		report.Scatter(w, "Figure 8", "hosted_domains", "impact_x", core.ImpactScatter(s.Events))
	})
	write("figure9.csv", func(w io.Writer) { report.Correlation(w, "Figure 9", core.IntensityCorrelation(s.Events)) })
	write("figure10.csv", func(w io.Writer) { report.Correlation(w, "Figure 10", core.DurationCorrelation(s.Events)) })
	write("figure11.csv", func(w io.Writer) { report.Groups(w, "Figure 11", core.ImpactByAnycast(s.Events)) })
	write("figure12.csv", func(w io.Writer) { report.Groups(w, "Figure 12", core.ImpactByASDiversity(s.Events)) })
	write("figure13.csv", func(w io.Writer) { report.Groups(w, "Figure 13", core.ImpactByPrefixDiversity(s.Events)) })
	write("metrics.json", func(w io.Writer) { s.Metrics.Snapshot().WriteJSON(w) })
	return firstErr
}
