// Command worldgen generates a synthetic DNS world and writes its routing
// metadata (the CAIDA-pfx2as-style prefix-to-AS file) plus a summary of the
// generated ecosystem.
//
// Usage:
//
//	worldgen [-domains N] [-providers N] [-seed S] [-pfx2as FILE] [-zone FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dnsddos/internal/astopo"
	"dnsddos/internal/authserver"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worldgen: ")
	cfg := scenario.DefaultWorldConfig()
	flag.IntVar(&cfg.Domains, "domains", cfg.Domains, "registered domains to generate")
	flag.IntVar(&cfg.GenericProviders, "providers", cfg.GenericProviders, "generic (long-tail) providers")
	seed := flag.Uint64("seed", cfg.Seed, "world seed")
	pfxOut := flag.String("pfx2as", "", "write prefix-to-AS mapping to this file")
	zoneOut := flag.String("zone", "", "write the world's delegations as an RFC 1035 master file")
	flag.Parse()
	cfg.Seed = *seed

	w := scenario.GenerateWorld(cfg)
	db := w.DB

	counts := map[dnsdb.Deployment]int{}
	for _, p := range db.Providers {
		counts[p.Deployment]++
	}
	fmt.Printf("world: %d domains, %d providers, %d nameservers, %d NS groups\n",
		len(db.Domains), len(db.Providers), len(db.Nameservers), len(w.Groups))
	fmt.Printf("deployments: %d unicast, %d anycast, %d partial-anycast providers\n",
		counts[dnsdb.DeployUnicast], counts[dnsdb.DeployAnycast], counts[dnsdb.DeployPartialAnycast])
	fmt.Printf("anycast census: %d snapshots, latest flags %d /24s\n",
		len(w.Census.Snapshots()), w.Census.Snapshots()[len(w.Census.Snapshots())-1].Len())
	fmt.Printf("routing table: %d announced prefixes\n", w.Topo.Len())

	if *pfxOut != "" {
		f, err := os.Create(*pfxOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := astopo.WriteEntries(f, w.Entries, w.Orgs); err != nil {
			log.Fatalf("writing pfx2as: %v", err)
		}
		fmt.Printf("wrote %s\n", *pfxOut)
	}
	if *zoneOut != "" {
		f, err := os.Create(*zoneOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := authserver.WriteZoneFile(f, authserver.FromDB(db)); err != nil {
			log.Fatalf("writing zone file: %v", err)
		}
		fmt.Printf("wrote %s\n", *zoneOut)
	}
}
