// Command joinpipe runs the full study end to end — world, schedule,
// telescope, inference, measurement sweeps, join — and writes the joined
// attack events as CSV, one row per (attack, NSSet) event.
//
// The run is supervised: SIGINT/SIGTERM cancel it cleanly, -checkpoint
// persists every completed day-sweep to a durable journal, and
// -checkpoint with -resume restarts a killed run from the last completed
// day instead of day 0. Day-sweeps that panic are retried once and then
// quarantined (reported on stderr) rather than aborting the run.
//
// Usage:
//
//	joinpipe [-domains N] [-attacks N] [-out FILE] [-quick] [-config FILE]
//	         [-checkpoint DIR] [-resume] [-shard-timeout D] [-metrics-addr :9090]
//	         [-legacy-join] [-index-cache N] [-shard-by BITS]
//	         [-coordinator HOST:PORT] [-min-workers N] [-heartbeat D] [-ranges N]
//
// With -coordinator, joinpipe runs no sweeps or joins itself: it listens
// on the given address and distributes the work across joinworker
// processes (DESIGN §3.6), with the same checkpoint/resume and
// quarantine semantics and byte-identical output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnsddos/internal/distjoin"
	"dnsddos/internal/obs"
	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("joinpipe: ")
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			// checkpoints (if enabled) are already durable; resume with
			// -resume
			log.Fatal("interrupted (completed day-sweeps are checkpointed; rerun with -resume)")
		}
		log.Fatal(err)
	}
}

// run owns all cleanup: the signal context, flushing checkpoints (done
// per-day inside the study), and removing a partially-written output
// file on error so a crashed run never leaves a plausible-looking CSV.
func run() (err error) {
	quick := flag.Bool("quick", true, "use the scaled-down quick configuration")
	domains := flag.Int("domains", 0, "override world size")
	attacks := flag.Int("attacks", 0, "override attack count")
	out := flag.String("out", "", "output CSV file (default stdout)")
	configPath := flag.String("config", "", "JSON study configuration (overrides -quick)")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: persist each completed day-sweep")
	resume := flag.Bool("resume", false, "resume from the checkpoints in -checkpoint instead of day 0")
	shardTimeout := flag.Duration("shard-timeout", 0, "watchdog deadline per day-sweep (0 = none); a stuck day is quarantined, not waited for")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics.json, /debug/vars and /debug/pprof/ on this address while the run is in flight (empty disables)")
	legacyJoin := flag.Bool("legacy-join", false, "use the historical linear-scan join engine instead of the interval-indexed sharded engine")
	indexCache := flag.Int("index-cache", 0, "join-engine day-snapshot LRU size (0 = default, negative = unbounded)")
	shardBy := flag.Int("shard-by", 0, "victim-prefix bits the join shards by (0 = default /16)")
	coordAddr := flag.String("coordinator", "", "run as fleet coordinator: listen on this address and distribute the work to joinworker processes")
	minWorkers := flag.Int("min-workers", 1, "coordinator mode: hold dispatch until this many workers register")
	heartbeat := flag.Duration("heartbeat", time.Second, "coordinator mode: fleet heartbeat interval")
	numRanges := flag.Int("ranges", 0, "coordinator mode: join shard-range partition width (0 = default)")
	suspectMissed := flag.Int("suspect-missed", 5, "coordinator mode: consecutive missed heartbeats before a worker is suspect (its tasks shadow-requeue)")
	deadMissed := flag.Int("dead-missed", 10, "coordinator mode: consecutive missed heartbeats before a worker is declared dead")
	daystoreDir := flag.String("daystore", "", "seal completed day-sweeps to columnar files in this directory and join against the mmap-backed views (out-of-core: resident memory stays flat in the world size)")
	inMemoryDays := flag.Bool("in-memory-days", false, "keep every day snapshot on the heap (the historical path); overrides -daystore")
	flag.Parse()

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := study.DefaultConfig()
	if *quick {
		cfg = study.QuickConfig()
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		cfg, err = study.ReadConfig(f, cfg)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *domains > 0 {
		cfg.World.Domains = *domains
	}
	if *attacks > 0 {
		cfg.Attacks.TotalAttacks = *attacks
	}

	reg := obs.New()
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "joinpipe: observability on http://%s/metrics.json\n", ms.Addr())
	}

	start := time.Now()
	var s *study.Study
	if *coordAddr != "" {
		if *legacyJoin || *indexCache != 0 || *shardBy != 0 || *shardTimeout != 0 {
			return fmt.Errorf("-legacy-join, -index-cache, -shard-by and -shard-timeout do not apply in coordinator mode")
		}
		if *daystoreDir != "" {
			return fmt.Errorf("-daystore does not apply in coordinator mode; pass -spool to the joinworker processes instead")
		}
		coord, err := distjoin.NewCoordinator(cfg,
			distjoin.WithListenAddr(*coordAddr),
			distjoin.WithHeartbeatInterval(*heartbeat),
			distjoin.WithCheckpointDir(*ckptDir),
			distjoin.WithResume(*resume),
			distjoin.WithMetrics(reg),
			distjoin.WithMinWorkers(*minWorkers),
			distjoin.WithNumRanges(*numRanges),
			distjoin.WithSuspectAfter(*suspectMissed),
			distjoin.WithDeadAfter(*deadMissed),
		)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "joinpipe: coordinating on %s (waiting for %d worker(s): joinworker -connect %s)\n",
			coord.Addr(), *minWorkers, coord.Addr())
		if s, err = coord.Run(ctx); err != nil {
			return err
		}
	} else {
		runOpts := []study.Option{
			study.WithCheckpointDir(*ckptDir),
			study.WithResume(*resume),
			study.WithShardTimeout(*shardTimeout),
			study.WithMetrics(reg),
			study.WithIndexCacheSize(*indexCache),
			study.WithShardBits(*shardBy),
		}
		if *legacyJoin {
			runOpts = append(runOpts, study.WithLegacyJoin())
		}
		if *daystoreDir != "" {
			runOpts = append(runOpts, study.WithDayStoreDir(*daystoreDir))
		}
		if *inMemoryDays {
			runOpts = append(runOpts, study.WithInMemoryDays())
		}
		var err error
		if s, err = study.RunContext(ctx, cfg, runOpts...); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "joinpipe: %d attacks inferred, %d events joined (%.1fs",
		len(s.Attacks), len(s.Events), time.Since(start).Seconds())
	if s.Report.ResumedDays > 0 {
		fmt.Fprintf(os.Stderr, ", %d day-sweeps resumed from checkpoint", s.Report.ResumedDays)
	}
	fmt.Fprintf(os.Stderr, ")\n")
	if len(s.Report.SkippedDays) > 0 {
		rows := make([]report.SkippedDayRow, len(s.Report.SkippedDays))
		for i, sd := range s.Report.SkippedDays {
			rows[i] = report.SkippedDayRow{Day: sd.Day, Reason: sd.Reason, Attempts: sd.Attempts}
		}
		report.SkippedDays(os.Stderr, rows)
	}

	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		w = f
		defer func() {
			if f == nil {
				return // closed cleanly below
			}
			f.Close()
			os.Remove(f.Name())
		}()
	}
	if err := report.EventsCSV(w, s.Events); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		f = nil
	}
	return nil
}
