// Command joinpipe runs the full study end to end — world, schedule,
// telescope, inference, measurement sweeps, join — and writes the joined
// attack events as CSV, one row per (attack, NSSet) event.
//
// Usage:
//
//	joinpipe [-domains N] [-attacks N] [-out FILE] [-quick] [-config FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("joinpipe: ")
	quick := flag.Bool("quick", true, "use the scaled-down quick configuration")
	domains := flag.Int("domains", 0, "override world size")
	attacks := flag.Int("attacks", 0, "override attack count")
	out := flag.String("out", "", "output CSV file (default stdout)")
	configPath := flag.String("config", "", "JSON study configuration (overrides -quick)")
	flag.Parse()

	cfg := study.DefaultConfig()
	if *quick {
		cfg = study.QuickConfig()
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err = study.ReadConfig(f, cfg)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *domains > 0 {
		cfg.World.Domains = *domains
	}
	if *attacks > 0 {
		cfg.Attacks.TotalAttacks = *attacks
	}

	start := time.Now()
	s := study.Run(cfg)
	fmt.Fprintf(os.Stderr, "joinpipe: %d attacks inferred, %d events joined (%.1fs)\n",
		len(s.Attacks), len(s.Events), time.Since(start).Seconds())

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := report.EventsCSV(w, s.Events); err != nil {
		log.Fatal(err)
	}
}
