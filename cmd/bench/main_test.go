// main_test.go drives run() the way make bench-e2e does, pinning the
// gate's exit-code contract end to end: a fresh deterministic smoke
// run gates clean against its own archive, a synthetic >15% P99
// regression exits 1 with the offending mode named, and structural
// problems (missing baseline without -update) exit 2.
package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/e2ebench"
)

// benchSmoke invokes run() with the deterministic smoke configuration
// plus extra args, returning exit code and captured output.
func benchSmoke(t *testing.T, extra ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"-smoke"}, extra...)
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSmokeArchivesAndGatesClean(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_e2e.json")

	// no baseline yet: -update archives the fresh run and passes
	code, out, errOut := benchSmoke(t, "-baseline", baseline, "-update")
	if code != 0 {
		t.Fatalf("archiving run exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "archived fresh run") {
		t.Errorf("archive path not reported:\n%s", out)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// same seed, same model: the gate must pass against the archive
	code, out, errOut = benchSmoke(t, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("identical rerun exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "gate passed") {
		t.Errorf("pass verdict missing:\n%s", out)
	}
}

// TestSyntheticP99RegressionFailsGate is the acceptance check: doctor
// the archived baseline so the (deterministic, reproducible) fresh run
// sits far beyond the 15%% threshold on P99, and the gate must exit 1
// naming the regressed mode.
func TestSyntheticP99RegressionFailsGate(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if code, out, errOut := benchSmoke(t, "-baseline", baseline, "-update"); code != 0 {
		t.Fatalf("archiving run exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}

	// shrink every archived P99 to a third: the unchanged fresh run now
	// reads as a 3x (200%) P99 regression in every mode
	base, err := e2ebench.LoadReport(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range base.Modes {
		m.P99NS /= 3
		base.Modes[name] = m
	}
	if err := base.WriteFile(baseline); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := benchSmoke(t, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("synthetic regression exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(errOut, "REGRESSION") || !strings.Contains(errOut, "baseline") {
		t.Errorf("regression report incomplete:\n%s", errOut)
	}

	// -update waives the regression and rewrites the archive in place
	code, out, errOut = benchSmoke(t, "-baseline", baseline, "-update")
	if code != 0 {
		t.Fatalf("-update exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "updated") {
		t.Errorf("update not reported:\n%s", out)
	}
	if code, _, _ := benchSmoke(t, "-baseline", baseline); code != 0 {
		t.Fatal("gate still failing after -update rewrote the baseline")
	}
}

// TestFailureRateRegressionFailsGate covers the gate's second axis:
// an archived baseline with a lower failure rate than the fresh run
// (beyond threshold and floor) must also fail the gate.
func TestFailureRateRegressionFailsGate(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if code, _, errOut := benchSmoke(t, "-baseline", baseline, "-update"); code != 0 {
		t.Fatalf("archiving run exited %d: %s", code, errOut)
	}
	base, err := e2ebench.LoadReport(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// the chaos mode genuinely fails queries in the smoke model; halve
	// its archived failure rate so the fresh run regresses on that axis
	m, ok := base.Modes["chaos"]
	if !ok || m.FailurePct <= 0 {
		t.Skipf("smoke chaos mode has no failures to regress (%.2f%%)", m.FailurePct)
	}
	m.FailurePct /= 4
	base.Modes["chaos"] = m
	if err := base.WriteFile(baseline); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := benchSmoke(t, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("failure-rate regression exited %d, want 1\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "chaos") {
		t.Errorf("regressed mode not named:\n%s", errOut)
	}
}

func TestMissingBaselineWithoutUpdateErrors(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "absent.json")
	code, _, errOut := benchSmoke(t, "-baseline", baseline)
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "no baseline") {
		t.Errorf("missing-baseline hint absent:\n%s", errOut)
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestSmokeIsSubSecond pins the wiring requirement that the smoke leg
// stays cheap enough for make test.
func TestSmokeIsSubSecond(t *testing.T) {
	start := time.Now()
	if code, out, errOut := benchSmoke(t); code != 0 {
		t.Fatalf("smoke exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("smoke took %s, want < 1s", elapsed.Round(time.Millisecond))
	}
}
