// Command bench is the end-to-end benchmark harness CLI: it runs the
// internal/e2ebench mode sweep (authserver fleet + dnsload through the
// retrying resolver under scripted fault windows), prints the per-mode
// summary table, optionally archives the machine-readable report, and
// — given a baseline — gates the run against it, exiting nonzero on
// >threshold% degradation of any mode's P99 latency or failure rate.
//
//	go run ./cmd/bench -baseline BENCH_e2e.json           # gate (make bench-e2e)
//	go run ./cmd/bench -baseline BENCH_e2e.json -update   # re-archive the baseline
//	go run ./cmd/bench -smoke                             # sub-second deterministic smoke
//
// Exit codes: 0 pass, 1 regression, 2 structural/usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnsddos/internal/e2ebench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke         = fs.Bool("smoke", false, "run the sub-second deterministic smoke configuration")
		deterministic = fs.Bool("deterministic", false, "use the seeded in-process transport model instead of real sockets")
		seed          = fs.Uint64("seed", 0, "run seed (0 = configuration default)")
		modes         = fs.String("modes", "", "comma-separated mode subset (default: all modes)")
		domains       = fs.Int("domains", 0, "world size in domains")
		names         = fs.Int("names", 0, "query-name corpus size")
		servers       = fs.Int("servers", 0, "authoritative fleet size per mode")
		rounds        = fs.Int("rounds", 0, "measured rounds per mode")
		warmup        = fs.Int("warmup", -1, "warm-up rounds per mode")
		queries       = fs.Int("queries", 0, "queries per round")
		concurrency   = fs.Int("concurrency", 0, "sender fan-out")
		qps           = fs.Float64("qps", 0, "aggregate target query rate (0 = unthrottled)")
		timeout       = fs.Duration("timeout", 0, "per-query client timeout (retries included)")
		perTry        = fs.Duration("per-try", 0, "per-attempt resolver timeout")
		out           = fs.String("out", "", "write the fresh report to this path")
		baseline      = fs.String("baseline", "", "gate against this archived report (BENCH_e2e.json)")
		threshold     = fs.Float64("threshold", e2ebench.DefaultThresholdPct, "allowed P99/failure-rate degradation, percent")
		update        = fs.Bool("update", false, "rewrite -baseline with the fresh run instead of failing on regression")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := e2ebench.Default()
	if *smoke {
		cfg = e2ebench.Smoke()
	}
	if *deterministic {
		cfg.Deterministic = true
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *modes != "" {
		for _, m := range strings.Split(*modes, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.Modes = append(cfg.Modes, m)
			}
		}
	}
	if *domains > 0 {
		cfg.Domains = *domains
	}
	if *names > 0 {
		cfg.Names = *names
	}
	if *servers > 0 {
		cfg.Servers = *servers
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *warmup >= 0 {
		cfg.Warmup = *warmup
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *concurrency > 0 {
		cfg.Concurrency = *concurrency
	}
	if *qps > 0 {
		cfg.TargetQPS = *qps
	}
	if *timeout > 0 {
		cfg.Timeout = *timeout
	}
	if *perTry > 0 {
		cfg.PerTryTimeout = *perTry
	}

	start := time.Now()
	rep, err := e2ebench.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	driver := "live sockets"
	if cfg.Deterministic {
		driver = "deterministic model"
	}
	fmt.Fprintf(stdout, "e2e bench: %d modes, %d+%d rounds x %d queries, fleet of %d (%s) in %s\n\n",
		len(rep.Modes), cfg.Rounds, cfg.Warmup, cfg.Queries, cfg.Servers, driver,
		time.Since(start).Round(time.Millisecond))
	fmt.Fprint(stdout, rep.SummaryTable())

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(stderr, "bench: writing %s: %v\n", *out, err)
			return 2
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *out)
	}
	if *baseline == "" {
		return 0
	}

	base, err := e2ebench.LoadReport(*baseline)
	if os.IsNotExist(err) {
		if *update {
			if werr := rep.WriteFile(*baseline); werr != nil {
				fmt.Fprintf(stderr, "bench: archiving %s: %v\n", *baseline, werr)
				return 2
			}
			fmt.Fprintf(stdout, "\nno baseline found; archived fresh run as %s\n", *baseline)
			return 0
		}
		fmt.Fprintf(stderr, "bench: no baseline at %s (run with -update to archive one)\n", *baseline)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	regs, err := e2ebench.Compare(base, rep, e2ebench.GateConfig{ThresholdPct: *threshold})
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	if *update {
		if err := rep.WriteFile(*baseline); err != nil {
			fmt.Fprintf(stderr, "bench: rewriting %s: %v\n", *baseline, err)
			return 2
		}
		fmt.Fprintf(stdout, "\nbaseline %s updated (%d regression(s) waived)\n", *baseline, len(regs))
		return 0
	}
	if len(regs) > 0 {
		fmt.Fprintf(stderr, "\nREGRESSION against %s (threshold %.0f%%):\n", *baseline, *threshold)
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		fmt.Fprintf(stderr, "re-archive intentionally with -update\n")
		return 1
	}
	fmt.Fprintf(stdout, "\ngate passed against %s (threshold %.0f%%)\n", *baseline, *threshold)
	return 0
}
