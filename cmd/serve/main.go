// Command serve runs the authoritative DNS server on a real address,
// serving either a generated synthetic world or a zone file — handy as a
// local test target for dig/drill/resolvers and for demos of the live
// measurement path.
//
// Usage:
//
//	serve [-addr 127.0.0.1:5353] [-zonefile FILE | -domains N] [-delay DUR]
//	      [-workers N] [-readers N] [-maxconns N]
//	      [-overload drop|servfail|tc] [-rrl-rps N] [-rrl-slip N]
//	      [-fault-drop P] [-fault-latency DUR] [-fault-jitter DUR]
//	      [-fault-dup P] [-fault-corrupt P] [-fault-start DUR -fault-window DUR]
//	      [-metrics-addr :9090]
//
// -metrics-addr exposes the server's live counters and latency
// histograms as /metrics.json, the expvar bridge at /debug/vars, and
// net/http/pprof under /debug/pprof/ — watch shed/RRL verdicts and
// per-query latency quantiles mid-flood with:
//
//	curl -s http://127.0.0.1:9090/metrics.json
//
// The -fault-* flags emulate a DDoS attack window netem-style on the
// server's own UDP listener; with -fault-start/-fault-window the faults
// engage on a schedule (healthy → attack → recovered), otherwise they
// hold for the whole run. -rrl-* and -overload select the graceful-
// degradation behaviour under flood.
//
// Query it with e.g.:
//
//	dig @127.0.0.1 -p 5353 mil.ru NS
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/obs"
	"dnsddos/internal/scenario"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "UDP+TCP listen address")
	zonePath := flag.String("zonefile", "", "serve this RFC 1035 master file instead of a generated world")
	domains := flag.Int("domains", 2000, "generated world size (ignored with -zonefile)")
	delay := flag.Duration("delay", 0, "artificial per-answer delay (to exercise client timeouts)")
	workers := flag.Int("workers", 0, "UDP worker pool size (0 = 2×GOMAXPROCS, min 8)")
	readers := flag.Int("readers", 0, "UDP reader goroutines sharing the socket (0 = 2)")
	maxconns := flag.Int("maxconns", 0, "concurrent TCP connection cap (0 = 256)")
	export := flag.String("export", "", "also write the served zone as a master file")
	overload := flag.String("overload", "drop", "overload policy for shed queries: drop, servfail, or tc")
	rrlRPS := flag.Float64("rrl-rps", 0, "RRL responses/s per source /24 (0 disables)")
	rrlSlip := flag.Int("rrl-slip", 2, "send every Nth rate-limited response as TC (0 never slips)")
	fDrop := flag.Float64("fault-drop", 0, "listener fault: datagram drop probability [0,1]")
	fLatency := flag.Duration("fault-latency", 0, "listener fault: added latency")
	fJitter := flag.Duration("fault-jitter", 0, "listener fault: latency jitter (± uniform)")
	fDup := flag.Float64("fault-dup", 0, "listener fault: duplication probability")
	fCorrupt := flag.Float64("fault-corrupt", 0, "listener fault: bit-corruption probability")
	fStart := flag.Duration("fault-start", 0, "with -fault-window: engage faults this long after start")
	fWindow := flag.Duration("fault-window", 0, "fault window length (0 = faults hold indefinitely)")
	fSeed := flag.Uint64("fault-seed", 1, "fault-injection RNG seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics.json, /debug/vars and /debug/pprof/ on this address (empty disables)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	policy, err := authserver.ParseOverloadPolicy(*overload)
	if err != nil {
		logger.Error("bad -overload", "err", err)
		os.Exit(1)
	}

	var zone *authserver.Zone
	if *zonePath != "" {
		f, err := os.Open(*zonePath)
		if err != nil {
			logger.Error("opening zone file", "err", err)
			os.Exit(1)
		}
		zone, err = authserver.ReadZoneFile(f)
		f.Close()
		if err != nil {
			logger.Error("parsing zone file", "err", err)
			os.Exit(1)
		}
		logger.Info("loaded zone file", "path", *zonePath, "delegations", zone.NumDelegations())
	} else {
		cfg := scenario.DefaultWorldConfig()
		cfg.Domains = *domains
		cfg.GenericProviders = 40
		world := scenario.GenerateWorld(cfg)
		zone = authserver.FromDB(world.DB)
		logger.Info("generated world", "domains", len(world.DB.Domains), "nameservers", len(world.DB.Nameservers))
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			logger.Error("creating export file", "err", err)
			os.Exit(1)
		}
		if err := authserver.WriteZoneFile(f, zone); err != nil {
			logger.Error("writing zone file", "err", err)
			os.Exit(1)
		}
		f.Close()
		logger.Info("exported zone", "path", *export)
	}

	srv := authserver.NewServer(zone, logger)
	srv.SetDelay(*delay)
	srv.Workers = *workers
	srv.Readers = *readers
	srv.MaxConns = *maxconns
	srv.Overload = policy
	if *rrlRPS > 0 {
		srv.RRL = &authserver.RRLConfig{ResponsesPerSecond: *rrlRPS, Slip: *rrlSlip}
	}

	attack := faultinject.Profile{
		Drop:      *fDrop,
		Latency:   *fLatency,
		Jitter:    *fJitter,
		Duplicate: *fDup,
		Corrupt:   *fCorrupt,
	}
	if attack.Active() {
		inj := faultinject.New(*fSeed)
		if *fWindow > 0 {
			inj.Engage(faultinject.AttackWindow(*fStart, *fStart+*fWindow, attack))
			logger.Info("fault window scheduled",
				"start", *fStart, "end", *fStart+*fWindow, "profile", fmt.Sprintf("%+v", attack))
		} else {
			inj.SetProfile(attack)
			logger.Info("faults engaged for the whole run", "profile", fmt.Sprintf("%+v", attack))
		}
		srv.WrapUDP = func(pc net.PacketConn) net.PacketConn {
			return faultinject.WrapPacketConn(pc, inj)
		}
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Error("starting server", "err", err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, srv.Metrics())
		if err != nil {
			logger.Error("starting metrics endpoint", "err", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("observability on http://%s/metrics.json (also /debug/vars, /debug/pprof/)\n", ms.Addr())
	}
	fmt.Printf("authoritative DNS serving on %s (UDP+TCP)\ntry: dig @%s -p %s mil.ru NS\n",
		bound, hostOf(bound), portOf(bound))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	st := srv.Stats()
	logger.Info("shutting down",
		"udp_answered", st.UDPAnswered, "udp_dropped", st.UDPDropped,
		"shed_servfail", st.UDPShedServFail, "shed_tc", st.UDPShedTruncated,
		"rrl_dropped", st.RRLDropped, "rrl_slipped", st.RRLSlipped,
		"tcp_queries", st.TCPQueries, "tcp_rejected", st.TCPRejected)
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		logger.Warn("close timed out")
	}
}

// hostOf splits the host out of "host:port", handling IPv6 literals like
// "[::1]:5353" (the returned host carries no brackets, as dig expects).
func hostOf(addr string) string {
	h, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return h
}

// portOf splits the port out of "host:port", handling IPv6 literals.
func portOf(addr string) string {
	_, p, err := net.SplitHostPort(addr)
	if err != nil {
		return ""
	}
	return p
}
