package main

import (
	"context"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// TestAddrHelpers covers the host:port splitting the startup banner uses,
// including the IPv6 literals the seed's byte-scanning helpers mangled.
func TestAddrHelpers(t *testing.T) {
	cases := []struct {
		addr, host, port string
	}{
		{"127.0.0.1:5353", "127.0.0.1", "5353"},
		{"[::1]:5353", "::1", "5353"},
		{"[2001:db8::53]:53", "2001:db8::53", "53"},
		{"localhost:53", "localhost", "53"},
	}
	for _, c := range cases {
		if got := hostOf(c.addr); got != c.host {
			t.Errorf("hostOf(%q) = %q, want %q", c.addr, got, c.host)
		}
		if got := portOf(c.addr); got != c.port {
			t.Errorf("portOf(%q) = %q, want %q", c.addr, got, c.port)
		}
	}
}

// TestIPv6ListenBanner starts the server the way main does on an IPv6
// listen address and checks the helpers yield a dig-usable host and port.
func TestIPv6ListenBanner(t *testing.T) {
	zone := authserver.NewZone()
	zone.AddNS("v6.example", "ns1.v6.example")
	zone.AddA("ns1.v6.example", netx.MustParseAddr("192.0.2.6"))
	srv := authserver.NewServer(zone, nil)
	bound, err := srv.Start("[::1]:0")
	if err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	}
	defer srv.Close()
	if h := hostOf(bound); h != "::1" {
		t.Errorf("hostOf(%q) = %q, want ::1", bound, h)
	}
	if p := portOf(bound); p == "" || p == "0" {
		t.Errorf("portOf(%q) = %q, want a real port", bound, p)
	}
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	m, _, err := client.Query(context.Background(), bound, "v6.example", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("query over IPv6 listen address: %v", err)
	}
	if len(m.Answers) != 1 {
		t.Errorf("answers = %d", len(m.Answers))
	}
}
