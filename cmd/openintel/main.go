// Command openintel runs the active-measurement platform over the simulated
// data plane for a day range and writes the per-query records as JSON
// lines — the OpenINTEL-style raw measurement output.
//
// Usage:
//
//	openintel [-from YYYY-MM-DD] [-to YYYY-MM-DD] [-out FILE] [-domains N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
	"dnsddos/internal/openintel"
	"dnsddos/internal/resolver"
	"dnsddos/internal/scenario"
	"dnsddos/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("openintel: ")
	fromS := flag.String("from", "2020-11-29", "first measured day (YYYY-MM-DD)")
	toS := flag.String("to", "2020-12-02", "last measured day (YYYY-MM-DD)")
	out := flag.String("out", "", "output JSONL file (default stdout)")
	domains := flag.Int("domains", 5000, "world size")
	flag.Parse()

	from, err := time.Parse("2006-01-02", *fromS)
	if err != nil {
		log.Fatalf("bad -from: %v", err)
	}
	to, err := time.Parse("2006-01-02", *toS)
	if err != nil {
		log.Fatalf("bad -to: %v", err)
	}

	wcfg := scenario.DefaultWorldConfig()
	wcfg.Domains = *domains
	w := scenario.GenerateWorld(wcfg)
	sched := scenario.GenerateSchedule(scenario.DefaultAttackConfig(), w)
	net := simnet.New(simnet.DefaultParams(), w.DB, sched.Sched, sched.Blackouts...)
	res := resolver.New(resolver.DefaultConfig(), w.DB, net)
	engine := openintel.NewEngine(w.DB, res, 42)

	var sink *openintel.RecordWriter
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		sink = openintel.NewRecordWriter(bw)
	} else {
		sink = openintel.NewRecordWriter(os.Stdout)
	}

	var n, fails int
	engine.RunRange(clock.DayOf(from), clock.DayOf(to), nil, func(r openintel.Record) {
		n++
		if r.Status != nsset.StatusOK {
			fails++
		}
		if err := sink.Write(r); err != nil {
			log.Fatalf("writing record: %v", err)
		}
	})
	fmt.Fprintf(os.Stderr, "openintel: %d measurements, %d failed (%.2f%%)\n",
		n, fails, 100*float64(fails)/float64(n))
}
