// Command joinworker is one member of the distributed join fleet
// (DESIGN §3.6). It connects to a joinpipe coordinator, rebuilds the
// study world deterministically from the configuration the coordinator
// sends, and executes assigned day-sweeps and join shard ranges until
// the run completes.
//
// The first SIGINT/SIGTERM triggers a graceful drain: the worker
// finishes its in-flight task, refuses new work, deregisters, and
// exits 0 — the coordinator reassigns nothing. A second signal aborts
// immediately (crash-equivalent): the coordinator's liveness machinery
// notices the dead connection and reassigns the in-flight task
// elsewhere.
//
// Usage:
//
//	joinworker -connect HOST:PORT [-name ID] [-metrics-addr :9091]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dnsddos/internal/distjoin"
	"dnsddos/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("joinworker: ")
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("aborted (in-flight work abandoned; the coordinator will reassign it)")
		}
		log.Fatal(err)
	}
}

func run() error {
	connect := flag.String("connect", "", "coordinator address (required)")
	name := flag.String("name", "", "worker name in fleet metrics and logs (default: worker-<pid>)")
	metricsAddr := flag.String("metrics-addr", "", "serve this worker's /metrics.json on this address (empty disables)")
	spoolDir := flag.String("spool", "", "spool the coordinator's day snapshots to sealed columnar files in this directory and join against the mmap-backed views (flat resident memory)")
	flag.Parse()

	if *connect == "" {
		return fmt.Errorf("-connect HOST:PORT is required")
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}

	reg := obs.New()
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "joinworker: observability on http://%s/metrics.json\n", ms.Addr())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	wOpts := []distjoin.WorkerOption{distjoin.WithWorkerMetrics(reg)}
	if *spoolDir != "" {
		wOpts = append(wOpts, distjoin.WithSpoolDir(*spoolDir))
	}
	w := distjoin.NewWorker(*name, wOpts...)

	// First signal drains gracefully, second aborts.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "joinworker: draining (finishing in-flight task; signal again to abort)")
		w.Drain()
		<-sigs
		cancel()
	}()

	if err := w.Run(ctx, *connect); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "joinworker: %s done\n", *name)
	return nil
}
