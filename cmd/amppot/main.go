// Command amppot runs the reflection-honeypot fleet against a generated
// attack schedule and compares its feed with the telescope's RSDoS feed —
// the joint-feed view (≈60% spoofed / 40% reflected in Jonker et al.) that
// frames the paper's visibility discussion (§2.1, §4.3).
//
// Usage:
//
//	amppot [-attacks N] [-honeypots N] [-pool N] [-full-visibility]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"dnsddos/internal/amppot"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/scenario"
	"dnsddos/internal/telescope"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("amppot: ")
	attacks := flag.Int("attacks", 20000, "spoofed attacks over the study window")
	honeypots := flag.Int("honeypots", 0, "override honeypot count")
	pool := flag.Int("pool", 0, "override reflector pool size")
	fullVis := flag.Bool("full-visibility", true, "attackers use the whole reflector pool (every attack observable)")
	flag.Parse()

	wcfg := scenario.DefaultWorldConfig()
	wcfg.Domains = 10000
	world := scenario.GenerateWorld(wcfg)
	acfg := scenario.DefaultAttackConfig()
	acfg.TotalAttacks = *attacks
	sched := scenario.GenerateSchedule(acfg, world)

	// telescope side
	tel := telescope.NewUCSD()
	obs := scenario.SynthesizeObs(scenario.DefaultSynthConfig(), world, sched.Sched, tel)
	spoofedAttacks := rsdos.Infer(rsdos.DefaultConfig(), obs)

	// honeypot side
	fcfg := amppot.DefaultConfig()
	if *honeypots > 0 {
		fcfg.Honeypots = *honeypots
	}
	if *pool > 0 {
		fcfg.ReflectorPool = *pool
	}
	if *fullVis {
		fcfg.ReflectorsPerAttack = fcfg.ReflectorPool
	}
	fleet := amppot.NewFleet(fcfg)
	reflected := fleet.Observe(rand.New(rand.NewPCG(1, 1)), sched.Sched)

	spoofed := make([]amppot.SpoofedAttack, 0, len(spoofedAttacks))
	for _, a := range spoofedAttacks {
		spoofed = append(spoofed, amppot.SpoofedAttack{Victim: a.Victim, From: a.Start(), To: a.End()})
	}
	fc := amppot.CompareFeeds(spoofed, reflected)
	fmt.Printf("telescope (RSDoS) attacks: %d\n", len(spoofedAttacks))
	fmt.Printf("honeypot (reflection) attacks: %d\n", len(reflected))
	fmt.Printf("joint view: spoofed-only %d, reflected-only %d, both (multi-vector) %d\n",
		fc.SpoofedOnly, fc.ReflectedOnly, fc.Both)
	fmt.Printf("spoofed share of all observed attacks: %.2f (Jonker et al.: 0.60)\n", fc.SpoofedShare())
}
