// Command attacksim generates the 17-month attack schedule for a world and
// either summarizes it or exports the packet-level telescope capture of one
// attack window as a pcap file (LINKTYPE_RAW, readable with tcpdump).
//
// Usage:
//
//	attacksim [-attacks N] [-seed S] [-pcap FILE -victim IP]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/backscatter"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/pcap"
	"dnsddos/internal/scenario"
	"dnsddos/internal/telescope"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacksim: ")
	wcfg := scenario.DefaultWorldConfig()
	acfg := scenario.DefaultAttackConfig()
	flag.IntVar(&wcfg.Domains, "domains", 10000, "world size")
	flag.IntVar(&acfg.TotalAttacks, "attacks", 20000, "spoofed attacks over the study window")
	seed := flag.Uint64("seed", acfg.Seed, "schedule seed")
	pcapOut := flag.String("pcap", "", "export one attack's telescope capture to this pcap file")
	victim := flag.String("victim", "", "victim IP for -pcap (defaults to the first TransIP NS)")
	flag.Parse()
	acfg.Seed = *seed

	w := scenario.GenerateWorld(wcfg)
	sched := scenario.GenerateSchedule(acfg, w)

	var spoofed, invisible int
	var dns int
	for _, s := range sched.Sched.Specs() {
		if s.Vector == attacksim.VectorRandomSpoofed {
			spoofed++
			if _, ok := w.DB.NameserverByAddr(s.Target); ok {
				dns++
			}
		} else {
			invisible++
		}
	}
	fmt.Printf("schedule: %d spoofed attacks (%d on DNS infrastructure), %d telescope-invisible components\n",
		spoofed, dns, invisible)
	fmt.Printf("case studies: TransIP Dec %s, Mar %s; mil.ru %s; RDZ %s\n",
		sched.CaseStudies.TransIPDecStart.Format("2006-01-02"),
		sched.CaseStudies.TransIPMarStart.Format("2006-01-02"),
		sched.CaseStudies.MilRuStart.Format("2006-01-02"),
		sched.CaseStudies.RZDStart.Format("2006-01-02"))

	if *pcapOut == "" {
		return
	}
	target := sched.CaseStudies.TransIPNS[0]
	if *victim != "" {
		a, err := netx.ParseAddr(*victim)
		if err != nil {
			log.Fatalf("bad -victim: %v", err)
		}
		target = a
	}
	if err := exportPcap(*pcapOut, w, sched, target); err != nil {
		log.Fatal(err)
	}
}

// exportPcap replays the first attacked window of the victim at packet
// level: spoofed flood → victim backscatter → telescope capture → pcap.
func exportPcap(path string, w *scenario.World, sched *scenario.Schedule, target netx.Addr) error {
	var spec *attacksim.Spec
	for _, s := range sched.Sched.Specs() {
		if s.Target == target && s.Vector == attacksim.VectorRandomSpoofed {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("no spoofed attack against %s in schedule", target)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pw, err := pcap.NewWriter(f)
	if err != nil {
		return err
	}
	tel := telescope.NewUCSD()
	cap := telescope.NewCapture(tel, pw, nil)
	victim := backscatter.DefaultNameserverVictim(true)
	rng := rand.New(rand.NewPCG(1, uint64(target)))
	window := clock.WindowOf(spec.Start.Add(clock.WindowDur)) // first full window
	// downsample the flood so the pcap stays a manageable size while the
	// thinning statistics stay faithful
	rate := 1.0
	if expected := spec.PPS * 300; expected > 2e6 {
		rate = 2e6 / expected
	}
	var floodPkts, bsPkts int64
	spec.Flood(rng, window, rate, func(t time.Time, p packet.Packet) bool {
		floodPkts++
		if rt, resp, ok := victim.Respond(rng, t, p); ok {
			bsPkts++
			if _, err := cap.Offer(rt, resp); err != nil {
				return false
			}
		}
		return true
	})
	if err := pw.Flush(); err != nil {
		return err
	}
	fmt.Printf("replayed %d flood packets (%.3f%% sample) → %d backscatter packets → %d captured at telescope → %s\n",
		floodPkts, rate*100, bsPkts, cap.Captured(), path)
	return nil
}
