// Command reactive replays an RSDoS attack feed (CSV, as written by
// cmd/telescope or the joinpipe study) through the reactive measurement
// platform: every feed entry that maps to a known nameserver triggers a
// probing campaign (§4.3.1), and a per-campaign summary is printed.
//
// With no -feed argument it generates a quick study and reacts to its
// DNS-direct attacks.
//
// Usage:
//
//	reactive [-feed feed.csv] [-max N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"dnsddos/internal/core"
	"dnsddos/internal/reactive"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reactive: ")
	feedPath := flag.String("feed", "", "RSDoS feed CSV to replay (default: generate a quick study)")
	maxCampaigns := flag.Int("max", 10, "max campaigns to run")
	flag.Parse()

	s := study.Run(study.QuickConfig())
	attacks := s.Attacks
	if *feedPath != "" {
		f, err := os.Open(*feedPath)
		if err != nil {
			log.Fatal(err)
		}
		var ferr error
		attacks, ferr = rsdos.ReadFeed(f)
		f.Close()
		if ferr != nil {
			log.Fatalf("reading feed: %v", ferr)
		}
	}

	platform := reactive.NewPlatform(reactive.DefaultConfig(), s.World.DB, s.Resolver, rand.New(rand.NewPCG(2, 2)))
	watcher := reactive.NewWatcher(platform)
	results := reactive.NewBus[*reactive.Campaign]()
	out := results.Subscribe(16)

	feed := make(chan rsdos.Attack)
	go func() {
		defer close(feed)
		n := 0
		for _, ca := range s.Pipeline.Classify(attacks) {
			if ca.Class != core.ClassDNSDirect {
				continue
			}
			if n >= *maxCampaigns {
				return
			}
			n++
			feed <- ca.Attack
		}
	}()
	go watcher.Run(feed, results)

	for c := range out {
		ok, total := 0, 0
		for _, p := range c.Probes {
			total++
			if p.RTT > 0 {
				ok++
			}
		}
		avail := 0.0
		if total > 0 {
			avail = 100 * float64(ok) / float64(total)
		}
		rec := "never"
		if t, found := c.RecoveryTime(0.5); found {
			rec = t.Format("01-02 15:04")
		}
		fmt.Printf("campaign victim=%s  %s..%s  trigger+%s  domains=%d probes=%d avail=%.1f%% recovered=%s\n",
			c.Attack.Victim,
			c.Attack.Start().Format("01-02 15:04"), c.Attack.End().Format("01-02 15:04"),
			c.Triggered.Sub(c.Attack.Start()).Round(1e9),
			len(c.Domains), len(c.Probes), avail, rec)
	}
}
