module dnsddos

go 1.22
