package dnsddos_test

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/core"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/study"
)

// Ablation benchmarks re-run the join pipeline (cheap; the measurement
// sweeps are shared) under the design alternatives DESIGN.md §6 calls out,
// printing how the headline numbers move.

// rebuildEvents reruns the pipeline with a modified config over the shared
// study's measurements.
func rebuildEvents(s *study.Study, mutate func(*core.Config)) []core.Event {
	cfg := s.Config.Pipeline
	mutate(&cfg)
	p := core.NewPipeline(s.World.DB, core.WithConfig(cfg), core.WithAggregator(s.Agg), core.WithCensus(s.World.Census), core.WithTopology(s.World.Topo), core.WithOpenResolvers(s.World.OpenRes))
	return p.Events(s.Attacks)
}

func summarizeEvents(events []core.Event) (n, failing, over10 int) {
	for _, e := range events {
		if e.Timeouts+e.ServFails > 0 {
			failing++
		}
		if e.HasImpact && e.Impact >= 10 {
			over10++
		}
	}
	return len(events), failing, over10
}

var ablOnce sync.Map

func printAblation(key, format string, args ...any) {
	if _, loaded := ablOnce.LoadOrStore(key, true); !loaded {
		fmt.Fprintf(os.Stdout, format, args...)
	}
}

// BenchmarkAblation_JoinSnapshotDay compares the paper's previous-day
// nameserver snapshot against a same-day snapshot (§4.2): with same-day, a
// devastating attack can hide the very NSSets it harms.
func BenchmarkAblation_JoinSnapshotDay(b *testing.B) {
	s := benchStudy(b)
	prev := summarize3(rebuildEvents(s, func(c *core.Config) { c.UsePrevDaySnapshot = true }))
	same := summarize3(rebuildEvents(s, func(c *core.Config) { c.UsePrevDaySnapshot = false }))
	printAblation("snapshot", "# ablation snapshot-day: prev-day %v vs same-day %v (events, failing, >=10x)\n", prev, same)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuildEvents(s, func(c *core.Config) { c.UsePrevDaySnapshot = false })
	}
}

func summarize3(ev []core.Event) [3]int {
	n, f, o := summarizeEvents(ev)
	return [3]int{n, f, o}
}

// BenchmarkAblation_BaselineWindow compares Eq. 1 baselines: previous day
// (paper) vs a week before (the paper reports similar results, §4.1).
func BenchmarkAblation_BaselineWindow(b *testing.B) {
	s := benchStudy(b)
	day := summarize3(rebuildEvents(s, func(c *core.Config) { c.BaselineDaysBack = 1 }))
	week := summarize3(rebuildEvents(s, func(c *core.Config) { c.BaselineDaysBack = 7 }))
	printAblation("baseline", "# ablation baseline-window: day-before %v vs week-before %v (events, failing, >=10x)\n", day, week)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuildEvents(s, func(c *core.Config) { c.BaselineDaysBack = 7 })
	}
}

// BenchmarkAblation_MinDomainsFilter sweeps the §6.3 noise filter.
func BenchmarkAblation_MinDomainsFilter(b *testing.B) {
	s := benchStudy(b)
	var line string
	for _, minD := range []int{1, 5, 20} {
		n, f, o := summarizeEvents(rebuildEvents(s, func(c *core.Config) { c.MinMeasuredDomains = minD }))
		line += fmt.Sprintf(" min=%d:(%d,%d,%d)", minD, n, f, o)
	}
	printAblation("mindomains", "# ablation min-measured-domains (events, failing, >=10x):%s\n", line)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuildEvents(s, func(c *core.Config) { c.MinMeasuredDomains = 1 })
	}
}

// BenchmarkAblation_OpenResolverFilter toggles the §6.1 open-resolver
// filter and reports how Table 5's head changes.
func BenchmarkAblation_OpenResolverFilter(b *testing.B) {
	s := benchStudy(b)
	printAblation("openres", "%s", func() string {
		on := core.NewPipeline(s.World.DB, core.WithConfig(s.Config.Pipeline), core.WithAggregator(s.Agg), core.WithCensus(s.World.Census), core.WithTopology(s.World.Topo), core.WithOpenResolvers(s.World.OpenRes))
		offCfg := s.Config.Pipeline
		offCfg.FilterOpenResolvers = false
		off := core.NewPipeline(s.World.DB, core.WithConfig(offCfg), core.WithAggregator(s.Agg), core.WithCensus(s.World.Census), core.WithTopology(s.World.Topo), core.WithOpenResolvers(s.World.OpenRes))
		onEvents := len(on.Events(s.Attacks))
		offEvents := len(off.Events(s.Attacks))
		return fmt.Sprintf("# ablation open-resolver filter: events with filter=%d without=%d (misconfigured-NS domains join in)\n",
			onEvents, offEvents)
	}())
	b.ResetTimer()
	offCfg := s.Config.Pipeline
	offCfg.FilterOpenResolvers = false
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(s.World.DB, core.WithConfig(offCfg), core.WithAggregator(s.Agg), core.WithCensus(s.World.Census), core.WithTopology(s.World.Topo), core.WithOpenResolvers(s.World.OpenRes))
		_ = p.Classify(s.Attacks)
	}
}

// BenchmarkAblation_ResolutionStrategy compares OpenINTEL's agnostic
// resolution against the reactive platform's NS-exhaustive strategy (§4.3,
// §9): exhaustive probing attributes failure to individual nameservers,
// which agnostic resolution cannot.
func BenchmarkAblation_ResolutionStrategy(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.TransIPNS[:])
	attack, ok := findAttack(s.Attacks, cs.TransIPNS[:], cs.TransIPMarStart, cs.TransIPMarEnd)
	if !ok {
		b.Skip("TransIP March attack not inferred")
	}
	_ = k
	printAblation("strategy", "%s", func() string {
		// agnostic: per-NSSet failure rate during the attack
		var agnostic string
		for _, e := range s.Events {
			if e.Attack.ID == attack.ID && e.NSSet == k {
				agnostic = fmt.Sprintf("agnostic NSSet failure rate %.2f", e.FailureRate)
			}
		}
		// exhaustive: per-NS availability from a reactive campaign
		platform := newBenchPlatform(s)
		c := platform.React(attack)
		perNS := map[string]string{}
		for _, wa := range c.Availability() {
			if !wa.Window.Start().After(attack.Start()) {
				continue
			}
			for ns, cnt := range wa.PerNS {
				addr := s.World.DB.Nameservers[ns].Addr.String()
				perNS[addr] = fmt.Sprintf("%.2f", float64(cnt[0])/float64(cnt[1]))
			}
			break
		}
		return fmt.Sprintf("# ablation resolution strategy: %s; exhaustive per-NS availability %v\n", agnostic, perNS)
	}())
	b.ResetTimer()
	platform := newBenchPlatform(s)
	for i := 0; i < b.N; i++ {
		_ = platform.React(attack)
	}
}

// BenchmarkPipelineJoin measures raw join throughput: attacks joined per
// second over the shared measurement dataset.
func BenchmarkPipelineJoin(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Pipeline.Events(s.Attacks)
	}
	b.ReportMetric(float64(len(s.Attacks)), "attacks/op")
}

// BenchmarkRSDoSInference measures inference throughput over the synthetic
// telescope observations.
func BenchmarkRSDoSInference(b *testing.B) {
	s := benchStudy(b)
	cfg := s.Config.RSDoS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rsdos.Infer(cfg, s.Obs)
	}
	b.ReportMetric(float64(len(s.Obs)), "observations/op")
}

// BenchmarkAblation_FollowDelegation compares resolution with and without
// following parent-side delegations: stale parents (lame delegations) burn
// round trips and slightly inflate baseline resolution times even with no
// attack in progress.
func BenchmarkAblation_FollowDelegation(b *testing.B) {
	s := benchStudy(b)
	quiet := s.Schedule.CaseStudies.TransIPDecStart.Add(-10 * 24 * time.Hour)
	// sample inconsistent domains
	var stale []dnsdb.DomainID
	for i := range s.World.DB.Domains {
		if s.World.DB.Domains[i].Inconsistent() {
			stale = append(stale, dnsdb.DomainID(i))
			if len(stale) == 300 {
				break
			}
		}
	}
	if len(stale) == 0 {
		b.Skip("no inconsistent delegations in this world")
	}
	measure := func(follow bool) (time.Duration, int) {
		cfg := s.Config.Resolver
		cfg.FollowDelegation = follow
		res := resolver.New(cfg, s.World.DB, s.Net)
		rng := rand.New(rand.NewPCG(31, 41))
		var sum time.Duration
		var fails int
		for i, d := range stale {
			o := res.Resolve(rng, d, quiet.Add(time.Duration(i)*time.Second))
			if o.Status == nsset.StatusOK {
				sum += o.RTT
			} else {
				fails++
			}
		}
		return sum / time.Duration(len(stale)), fails
	}
	printAblation("delegation", "%s", func() string {
		withRTT, withFails := measure(true)
		withoutRTT, withoutFails := measure(false)
		return fmt.Sprintf("# ablation follow-delegation (%d stale-parent domains, quiet period): with delegation avgRTT=%s fails=%d; child-only avgRTT=%s fails=%d\n",
			len(stale), withRTT.Round(time.Microsecond), withFails, withoutRTT.Round(time.Microsecond), withoutFails)
	}())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = measure(true)
	}
}
