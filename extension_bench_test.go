package dnsddos_test

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/amppot"
	"dnsddos/internal/attacksim"
	"dnsddos/internal/cache"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/simnet"
)

// Extension benchmarks cover the paper's discussion points that are not
// tables or figures: the caching counterfactual (§2.2/footnote 1, the
// "When the Dike Breaks" corroboration), the AmpPot feed comparison (§4.3's
// 60/40 spoofed-vs-reflected statistic), and multi-vantage catchment
// measurement (§9 future work).

// BenchmarkExtension_CacheEfficacy compares empty-cache (OpenINTEL-style)
// and warm-cache (end-user-resolver-style) failure rates for domains under
// the March TransIP attack.
func BenchmarkExtension_CacheEfficacy(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	// domains hosted on the TransIP NSSet
	ns, ok := s.World.DB.NameserverByAddr(cs.TransIPNS[0])
	if !ok {
		b.Fatal("TransIP NS missing")
	}
	domains := s.World.DB.DomainsOf(ns.ID)
	if len(domains) > 300 {
		domains = domains[:300]
	}
	during := cs.TransIPMarStart.Add(90 * time.Minute)

	run := func(ttl time.Duration, warm bool) (fails int) {
		rng := rand.New(rand.NewPCG(77, uint64(ttl)))
		cr := cache.NewResolver(s.Resolver, 0, ttl)
		if warm {
			for _, d := range domains {
				cr.Resolve(rng, d, during.Add(-3*time.Hour))
			}
		}
		for _, d := range domains {
			if o := cr.Resolve(rng, d, during); o.Status != nsset.StatusOK {
				fails++
			}
		}
		return fails
	}
	printReport("ext-cache", func() {
		cold := run(4*time.Hour, false)
		warmLong := run(4*time.Hour, true)
		warmCDN := run(time.Minute, true)
		fmt.Printf("# cache efficacy during TransIP March attack (%d domains): empty-cache fails=%d, warm 4h-TTL fails=%d, warm 60s-TTL fails=%d\n",
			len(domains), cold, warmLong, warmCDN)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(4*time.Hour, true)
	}
}

// BenchmarkExtension_FeedComparison reproduces the Jonker et al. joint-feed
// statistic: ≈60% of attacks are telescope-visible (randomly spoofed), ≈40%
// only visible to reflection honeypots.
func BenchmarkExtension_FeedComparison(b *testing.B) {
	s := benchStudy(b)
	fleet := amppot.NewFleet(ampCfgFullVisibility())
	rng := rand.New(rand.NewPCG(88, 88))
	reflected := fleet.Observe(rng, s.Schedule.Sched)
	spoofed := make([]amppot.SpoofedAttack, 0, len(s.Attacks))
	for _, a := range s.Attacks {
		spoofed = append(spoofed, amppot.SpoofedAttack{Victim: a.Victim, From: a.Start(), To: a.End()})
	}
	fc := amppot.CompareFeeds(spoofed, reflected)
	printReport("ext-feeds", func() {
		fmt.Printf("# joint feeds: spoofed-only=%d reflected-only=%d both(multi-vector)=%d spoofed_share=%.2f (Jonker et al.: 0.60)\n",
			fc.SpoofedOnly, fc.ReflectedOnly, fc.Both, fc.SpoofedShare())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = amppot.CompareFeeds(spoofed, reflected)
	}
}

// ampCfgFullVisibility lets the honeypots see every reflection attack so
// the share statistic reflects the schedule, not fleet sampling.
func ampCfgFullVisibility() amppot.Config {
	cfg := amppot.DefaultConfig()
	cfg.ReflectorsPerAttack = cfg.ReflectorPool
	return cfg
}

// BenchmarkExtension_MultiVantage quantifies catchment masking (§4.3
// limitation 4, §9 future work) with a controlled experiment: a 16-site
// anycast nameserver under a flood that saturates its hottest sites while
// leaving cold sites comfortable. A vantage whose catchment lands on a cold
// site reports a healthy service; one landing on a hot site sees failures —
// so any single vantage under-observes the attack.
func BenchmarkExtension_MultiVantage(b *testing.B) {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "AnycastRegional"})
	id, err := db.AddNameserver(dnsdb.Nameserver{
		Host: "ns1.regional.example", Addr: 0x52000001, Provider: pid,
		Anycast: true, Sites: 16, CapacityPPS: 5e4, BaseRTT: 8 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	db.AddDomain(dnsdb.Domain{Name: "r.example", NS: []dnsdb.NameserverID{id}})
	db.Freeze()
	atkStart := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	sched := attacksim.NewSchedule([]attacksim.Spec{{
		Target: db.Nameservers[id].Addr, Vector: attacksim.VectorRandomSpoofed,
		Proto: packet.ProtoTCP, Ports: []uint16{53},
		Start: atkStart, End: atkStart.Add(time.Hour), PPS: 1.2e6,
	}})
	net := simnet.New(simnet.DefaultParams(), db, sched)
	mid := atkStart.Add(30 * time.Minute)
	measure := func(seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, 7))
		v := net.WithVantage(simnet.Vantage{Name: fmt.Sprintf("v%d", seed), RTTScale: 1, CatchmentSeed: seed})
		var impaired int
		for i := 0; i < 200; i++ {
			st, rtt := v.Query(rng, id, mid)
			if st != nsset.StatusOK || rtt > 3*db.Nameservers[id].BaseRTT {
				impaired++
			}
		}
		return float64(impaired) / 200
	}
	printReport("ext-vantage", func() {
		rates := make([]float64, 12)
		best, worst := 1.0, 0.0
		for seed := range rates {
			rates[seed] = measure(uint64(seed))
			if rates[seed] < best {
				best = rates[seed]
			}
			if rates[seed] > worst {
				worst = rates[seed]
			}
		}
		fmt.Printf("# multi-vantage catchment: 12 vantages against one attacked 16-site anycast NS, impairment best=%.2f worst=%.2f (single NL-style vantage sees only its own catchment; per-vantage: %v)\n",
			best, worst, rates)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = measure(uint64(i % 12))
	}
}

// BenchmarkExtension_PopularityCaching quantifies §6.3.1's caching remark:
// during the March TransIP attack, a resolver's user population sees
// failures concentrated on unpopular domains, because popular ones stay
// warm in cache.
func BenchmarkExtension_PopularityCaching(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	ns, ok := s.World.DB.NameserverByAddr(cs.TransIPNS[0])
	if !ok {
		b.Fatal("TransIP NS missing")
	}
	domains := s.World.DB.DomainsOf(ns.ID)
	cfg := cache.DefaultPopulationConfig()
	cfg.QueryRate = 3
	cfg.TTL = 2 * time.Hour
	run := func() []cache.PopularityOutcome {
		cr := cache.NewResolver(s.Resolver, 0, cfg.TTL)
		return cache.SimulatePopulation(cfg, cr, domains,
			cs.TransIPMarStart.Add(-5*time.Hour),
			cs.TransIPMarStart,
			cs.TransIPMarStart.Add(45*time.Minute))
	}
	printReport("ext-popularity", func() {
		outcomes := run()
		fmt.Print("# popularity vs caching during TransIP March attack (failure rate by popularity decile):")
		for _, o := range outcomes {
			fmt.Printf(" d%d=%.2f", o.Decile, o.FailureRate())
		}
		fmt.Println()
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run()
	}
}
