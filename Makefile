# Convenience targets for the dnsddos reproduction. The race-gate target
# is the concurrency CI gate for the real-socket serving path: vet, full
# build, then the race detector over every package that touches sockets
# or shared server state.

GO ?= go

.PHONY: build test obs stream distjoin race-gate soak chaos bench-throughput bench-join bench-daystore bench-smoke bench-e2e bench-e2e-update flake-sweep report

build:
	$(GO) build ./...

test: build obs stream distjoin bench-smoke
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -bench 'BenchmarkJoin' -benchtime 1x -run '^$$' .

# Streaming smoke: the stream-vs-batch parity harness, exactly-once
# kill/resume, late-drop accounting, and the aggregator order-invariance
# property tests that back the watermark semantics.
stream:
	$(GO) test ./internal/stream/ -count 1
	$(GO) test ./internal/rsdos/ -run 'TestPacketAggregatorLateDrop|TestAggregator.*Property|TestWindowerLatenessAbsorbsJitter' -count 1

# Observability gate: the metrics layer and its consumers under the race
# detector — concurrent counter/histogram exactness, snapshot
# determinism (golden files), the HTTP endpoint lifecycle, the
# goroutine-leak helper applied to server and resolver teardown, and a
# smoke pass over the wire-format fuzz seed corpora.
obs:
	$(GO) test -race ./internal/obs/ ./internal/netx/ -count 1
	$(GO) test -race ./internal/authserver/ -run 'Leaks|TestMetricsEndpoint' -count 1
	$(GO) test -race ./internal/resolver/ -run 'TestLiveResolverMetrics' -count 1
	$(GO) test -race ./internal/dnsload/ -run 'TestFailureClassificationTable' -count 1
	$(GO) test -race ./internal/study/ -run 'TestRunMetrics' -count 1
	$(GO) test ./internal/dnswire/ -run 'Fuzz' -count 1

# Distributed-join chaos leg: a four-worker fleet with one worker killed
# mid-shard and one writing through a corrupting faultinject stream must
# still produce byte-identical output, plus the poisoned-day quarantine,
# graceful-drain, real-SIGKILL-subprocess, and coordinator kill-and-
# resume parity suites.
distjoin:
	$(GO) test ./internal/distjoin/ \
		-run 'TestChaosFleet|TestDistributedParity|TestPoisonedDayQuarantineParity|TestGracefulDrain|TestCoordinatorKillAndResume|TestSIGKILLWorkerMidRun' \
		-count 1
	$(GO) test ./internal/faultinject/ -run 'TestStream' -count 1

# Overload soak: the 10x-rate replay through the admission/spill tier,
# SIGKILLed mid-emission and resumed — flat memory, bounded lag recovery,
# byte-identical emission. Run under the race detector; part of the gate.
soak:
	$(GO) test -race ./internal/stream/ -run 'TestOverloadSoak|TestOverload|TestCursorSyncBoundaryCrash' -count 1

# Concurrency gate: run before merging changes to the serving path, the
# sharded join engine (shared NS index, day-snapshot LRU, worker pool),
# the distributed-join control plane, or the resilience/overload tier.
race-gate: soak
	$(GO) vet ./... && $(GO) build ./... && \
	$(GO) test -race ./internal/authserver/... ./internal/resolver/... ./internal/dnsload/... \
		./internal/core/... ./internal/cache/... ./internal/resilience/... \
		./internal/stream/... ./internal/distjoin/... ./internal/daystore/...
	$(GO) test -race ./internal/study/ -run 'TestJoinParityColumnar|TestColumnarCancelAndResume' -count 1
	$(GO) test -race ./internal/e2ebench/ -run 'TestDeterminism' -count 1

# Chaos gate: the fault-injection and graceful-degradation regression
# suite under the race detector — the netem-style wrappers, the retrying
# live resolver against lossy/dead servers, RRL/overload shedding,
# dnsload's failure classification, and the supervised study pipeline
# (injected day-shard panics, watchdog stalls, mid-run cancel + resume).
chaos:
	$(GO) test -race ./internal/faultinject/ \
		-run . -count 1
	$(GO) test -race ./internal/authserver/ \
		-run 'TestOverload|TestRRL|TestReflex|TestWrappedListener' -count 1 -v
	$(GO) test -race ./internal/resolver/ \
		-run 'TestLive|TestQueryWith|TestUDPClientEDNS' -count 1 -v
	$(GO) test -race ./internal/dnsload/ \
		-run 'TestFailure|TestPartialLoss' -count 1 -v
	$(GO) test -race ./internal/study/ \
		-run 'TestPanicQuarantine|TestPanicRetryRecovers|TestWatchdogQuarantinesStuckShard|TestCancelAndResumeByteIdentical|TestResumeRefusesCorruptCheckpoints' \
		-count 1 -v

# End-to-end bench smoke: the sub-second deterministic mode sweep plus
# the harness's own tests (comparator goldens, gate exit codes, the
# live-socket drivers at seconds scale). Part of make test.
bench-smoke:
	$(GO) run ./cmd/bench -smoke
	$(GO) test ./internal/e2ebench/ ./cmd/bench/ -count 1

# End-to-end regression gate: a fresh live-socket mode sweep (baseline,
# RRL, each overload policy, chaos, blackhole) against the archived
# BENCH_e2e.json — exits 1 on >15% degradation of any mode's P99 or
# failure rate. Re-archive intentionally with make bench-e2e-update.
bench-e2e:
	$(GO) run ./cmd/bench -baseline BENCH_e2e.json

bench-e2e-update:
	$(GO) run ./cmd/bench -baseline BENCH_e2e.json -update

# Flakiness sweep: every package five times under the race detector.
# Needs an explicit -timeout — the overload soak and distjoin chaos
# suites are wall-clock heavy by design, and five repetitions overrun
# go test's default 10m budget long before anything is actually stuck.
flake-sweep:
	$(GO) test -race -count=5 -timeout 40m ./internal/... ./cmd/...

# Serving-engine throughput (workers=1 is the serialized baseline).
bench-throughput:
	$(GO) test -bench 'Server_(UDP|TCP)Throughput' -benchtime 1s -run '^$$' ./internal/authserver/

# Join-engine benchmark: the interval-indexed sharded engine against the
# legacy linear scan, with allocation counts. The raw `go test -json`
# event stream is archived in BENCH_join.json; the sed line prints the
# human-readable benchmark rows.
bench-join:
	$(GO) test -json -bench 'BenchmarkJoin' -benchmem -benchtime 1s -count 3 -run '^$$' . > BENCH_join.json
	@awk -F'"Output":"' '/"Output":/{s=$$2; sub(/"}$$/,"",s); gsub(/\\n/,"\n",s); gsub(/\\t/,"\t",s); printf "%s", s}' \
		BENCH_join.json | grep -E 'ns/op|^(goos|cpu)'

# Out-of-core day-store scale benchmark: seals a >1M-domain-per-day world
# to columnar files and scans it join-style through the mmap views; the
# benchmark itself FAILS if resident heap growth exceeds a quarter of the
# on-disk volume (the flat-RSS acceptance bar). Archived in
# BENCH_daystore.json.
bench-daystore:
	$(GO) test -json -bench 'BenchmarkDayStoreScale' -benchtime 1x -count 1 -run '^$$' -timeout 30m ./internal/daystore/ > BENCH_daystore.json
	@awk -F'"Output":"' '/"Output":/{s=$$2; sub(/"}$$/,"",s); gsub(/\\n/,"\n",s); gsub(/\\t/,"\t",s); printf "%s", s}' \
		BENCH_daystore.json | grep -E 'ns/op|^(goos|cpu)'

# The paper's tables and figures.
report:
	$(GO) test -bench . -benchtime 1x .
